//! JSON scenario files: declarative SCMP simulations for the `scenario`
//! binary.
//!
//! A scenario file picks a topology, an m-router placement, an optional
//! link-capacity model, and a timeline of join/leave/send events; the
//! runner executes it on the full SCMP protocol and reports the §IV-B
//! metrics plus per-member delivery. Example:
//!
//! ```json
//! {
//!   "topology": { "kind": "waxman", "n": 50, "seed": 7 },
//!   "m_router": "rule1",
//!   "events": [
//!     { "time": 0,      "node": 4, "op": "join", "group": 1 },
//!     { "time": 1000,   "node": 9, "op": "join", "group": 1 },
//!     { "time": 500000, "node": 2, "op": "send", "group": 1, "tag": 1 }
//!   ]
//! }
//! ```

use scmp_core::placement;
use scmp_core::router::{ReliabilityConfig, ScmpConfig};
use scmp_net::rng::rng_for;
use scmp_net::topology::{arpanet, gt_itm_flat, waxman, GtItmConfig, WaxmanConfig};
use scmp_net::{provider_for, NodeId, PathProvider, Topology};
use scmp_protocols::build_scmp_engine;
use scmp_sim::{
    AppEvent, CapacityModel, ChannelModel, ChannelPlan, FaultPlan, FaultSpec, GroupId, JsonlSink,
    SimStats,
};
use scmp_telemetry::SharedBuf;
use serde::{Deserialize, Serialize};

/// Topology selection.
#[derive(Clone, Debug, Deserialize, Serialize)]
#[serde(tag = "kind", rename_all = "lowercase")]
pub enum TopologySpec {
    /// The paper's Waxman model.
    Waxman {
        /// Node count.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// GT-ITM-like flat random.
    Gtitm {
        /// Node count.
        n: usize,
        /// Target average degree.
        degree: f64,
        /// Generator seed.
        seed: u64,
    },
    /// The classic ARPANET map with seeded weights.
    Arpanet {
        /// Weight seed.
        seed: u64,
    },
    /// An explicit topology: `links[k] = [a, b, delay, cost]`.
    Custom {
        /// Node count.
        nodes: usize,
        /// Undirected links with weights.
        links: Vec<[u64; 4]>,
    },
}

impl TopologySpec {
    /// Materialise the topology.
    pub fn build(&self) -> Topology {
        match *self {
            TopologySpec::Waxman { n, seed } => waxman(
                &WaxmanConfig {
                    n,
                    min_delay_one: true,
                    ..WaxmanConfig::default()
                },
                &mut rng_for("scenario-waxman", seed),
            ),
            TopologySpec::Gtitm { n, degree, seed } => gt_itm_flat(
                &GtItmConfig {
                    n,
                    average_degree: degree,
                    grid: 32_767,
                },
                &mut rng_for("scenario-gtitm", seed),
            ),
            TopologySpec::Arpanet { seed } => arpanet(&mut rng_for("scenario-arpanet", seed)),
            TopologySpec::Custom { nodes, ref links } => {
                let mut b = scmp_net::TopologyBuilder::new(nodes);
                for &[a, bb, delay, cost] in links {
                    b.add_link(
                        NodeId(a as u32),
                        NodeId(bb as u32),
                        scmp_net::LinkWeight { delay, cost },
                    );
                }
                b.build()
            }
        }
    }
}

/// m-router placement: a fixed node id or one of the §IV-A rules.
#[derive(Clone, Debug, Deserialize, Serialize)]
#[serde(untagged)]
pub enum MRouterSpec {
    /// Explicit node id.
    Node(u32),
    /// Placement rule: `"rule1"`, `"rule2"`, `"rule3"`.
    Rule(String),
}

impl MRouterSpec {
    /// Resolve to a node.
    pub fn resolve(&self, topo: &Topology, paths: &dyn PathProvider) -> Result<NodeId, String> {
        match self {
            MRouterSpec::Node(v) => {
                let id = NodeId(*v);
                if id.index() < topo.node_count() {
                    Ok(id)
                } else {
                    Err(format!("m_router {v} out of range"))
                }
            }
            MRouterSpec::Rule(r) => match r.as_str() {
                "rule1" => Ok(placement::min_average_delay(topo, paths)),
                "rule2" => Ok(placement::max_degree(topo)),
                "rule3" => Ok(placement::diameter_midpoint(topo, paths)),
                other => Err(format!("unknown placement rule {other:?}")),
            },
        }
    }
}

/// One timeline event.
#[derive(Clone, Debug, Deserialize, Serialize)]
pub struct EventSpec {
    /// Absolute simulation time (ticks).
    pub time: u64,
    /// Router (DR) the event occurs at.
    pub node: u32,
    /// `"join"`, `"leave"` or `"send"`.
    pub op: String,
    /// Group id.
    pub group: u32,
    /// Payload tag (send only; defaults to an auto-increment).
    #[serde(default)]
    pub tag: Option<u64>,
}

/// Optional capacity model.
#[derive(Clone, Debug, Deserialize, Serialize)]
pub struct CapacitySpec {
    /// Per-packet serialisation time.
    pub link_tx: u64,
    /// Queue slots per link direction.
    pub queue_limit: u64,
    /// Give the m-router faster ports.
    #[serde(default)]
    pub m_router_tx: Option<u64>,
}

/// Robustness knobs mapped onto [`ScmpConfig`]; absent fields keep the
/// config defaults.
#[derive(Clone, Debug, Default, Deserialize, Serialize)]
pub struct RobustnessSpec {
    /// m-router repair-scan period (0 = off).
    #[serde(default)]
    pub repair_interval: Option<u64>,
    /// JOIN retransmission base delay (0 = off).
    #[serde(default)]
    pub join_retry: Option<u64>,
    /// LEAVE retransmission base delay (0 = off).
    #[serde(default)]
    pub leave_retry: Option<u64>,
    /// Primary→standby heartbeat period (0 = off).
    #[serde(default)]
    pub heartbeat_interval: Option<u64>,
    /// Hot-standby m-router node.
    #[serde(default)]
    pub standby: Option<u32>,
    /// Delay between takeover and the rebuilt TREE push.
    #[serde(default)]
    pub takeover_rebuild_delay: Option<u64>,
    /// TREE/BRANCH retransmission base delay (0 = off). Enables
    /// TREE-ACKs from receivers.
    #[serde(default)]
    pub tree_retry: Option<u64>,
    /// Consecutive lost heartbeats the standby tolerates before taking
    /// over (default 4).
    #[serde(default)]
    pub heartbeat_loss_tolerance: Option<u32>,
}

/// Reliable-multicast tier knobs mapped onto [`ReliabilityConfig`];
/// the section's *presence* switches the tier on, and absent fields
/// keep the config defaults. Without a `reliability` section the run is
/// byte-identical to one on a build without the tier at all.
#[derive(Clone, Debug, Default, Deserialize, Serialize)]
pub struct ReliabilitySpec {
    /// Base delay before a detected gap NACKs (ticks).
    #[serde(default)]
    pub nack_delay: Option<u64>,
    /// Width of the randomized suppression-jitter window (ticks).
    #[serde(default)]
    pub nack_jitter: Option<u64>,
    /// NACK attempts per gap before giving up.
    #[serde(default)]
    pub nack_retries: Option<u32>,
    /// Per-router repair-cache budget in bytes.
    #[serde(default)]
    pub cache_bytes: Option<usize>,
    /// Period of the origin's sequence-extent announcements (0 = off).
    #[serde(default)]
    pub announce_interval: Option<u64>,
    /// Announcement rounds per kick.
    #[serde(default)]
    pub announce_rounds: Option<u32>,
    /// Smallest modelled payload size in bytes (repair-cache charging).
    #[serde(default)]
    pub payload_bytes_min: Option<u32>,
    /// Largest modelled payload size in bytes.
    #[serde(default)]
    pub payload_bytes_max: Option<u32>,
    /// Seed of the deterministic suppression-jitter hash.
    #[serde(default)]
    pub seed: Option<u64>,
}

impl ReliabilitySpec {
    /// Materialise the config, defaulting absent fields.
    pub fn build(&self) -> ReliabilityConfig {
        let d = ReliabilityConfig::default();
        ReliabilityConfig {
            nack_delay: self.nack_delay.unwrap_or(d.nack_delay),
            nack_jitter: self.nack_jitter.unwrap_or(d.nack_jitter),
            nack_retries: self.nack_retries.unwrap_or(d.nack_retries),
            cache_bytes: self.cache_bytes.unwrap_or(d.cache_bytes),
            announce_interval: self.announce_interval.unwrap_or(d.announce_interval),
            announce_rounds: self.announce_rounds.unwrap_or(d.announce_rounds),
            payload_bytes_min: self.payload_bytes_min.unwrap_or(d.payload_bytes_min),
            payload_bytes_max: self.payload_bytes_max.unwrap_or(d.payload_bytes_max),
            seed: self.seed.unwrap_or(d.seed),
        }
    }
}

/// A generated membership wave: a compact description of many
/// join/leave events the runner (and the delivery oracle) expand into
/// the ordinary timeline. Two families from the measurement literature:
/// the day/night cycle and the flash crowd.
#[derive(Clone, Debug, Deserialize, Serialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum MembershipSchedule {
    /// Day/night churn: every listed DR joins `group` at each cycle
    /// start (`start + c * period`) and leaves at the half-period, for
    /// `cycles` cycles.
    DiurnalChurn {
        group: u32,
        members: Vec<u32>,
        start: u64,
        period: u64,
        cycles: u32,
    },
    /// Flash crowd: the listed DRs join `group` in quick succession
    /// (`stagger` ticks apart, starting at `at`) and — optionally —
    /// all leave together at `leave_at`.
    FlashCrowd {
        group: u32,
        members: Vec<u32>,
        at: u64,
        stagger: u64,
        #[serde(default)]
        leave_at: Option<u64>,
    },
}

impl MembershipSchedule {
    /// Shape-check entry `i` against the topology; errors name the
    /// entry the same way fault validation does.
    pub fn validate(&self, i: usize, topo: &Topology) -> Result<(), String> {
        let (members, label) = match self {
            MembershipSchedule::DiurnalChurn {
                members,
                period,
                cycles,
                ..
            } => {
                if *cycles == 0 {
                    return Err(format!("membership_schedule[{i}]: cycles must be >= 1"));
                }
                if *period < 2 {
                    return Err(format!(
                        "membership_schedule[{i}]: period {period} too short (day half would be empty)"
                    ));
                }
                (members, "diurnal_churn")
            }
            MembershipSchedule::FlashCrowd {
                members,
                at,
                stagger,
                leave_at,
                ..
            } => {
                if let Some(leave) = leave_at {
                    let last_join = at + stagger * (members.len().max(1) as u64 - 1);
                    if *leave <= last_join {
                        return Err(format!(
                            "membership_schedule[{i}]: leave_at {leave} not after the last join at {last_join}"
                        ));
                    }
                }
                (members, "flash_crowd")
            }
        };
        if members.is_empty() {
            return Err(format!("membership_schedule[{i}]: {label} has no members"));
        }
        for &m in members {
            if m as usize >= topo.node_count() {
                return Err(format!("membership_schedule[{i}]: member {m} out of range"));
            }
        }
        Ok(())
    }

    /// Expand into plain timeline events (pure — no topology needed).
    pub fn expand(&self) -> Vec<EventSpec> {
        let ev = |time: u64, node: u32, op: &str, group: u32| EventSpec {
            time,
            node,
            op: op.into(),
            group,
            tag: None,
        };
        let mut out = Vec::new();
        match self {
            MembershipSchedule::DiurnalChurn {
                group,
                members,
                start,
                period,
                cycles,
            } => {
                for c in 0..u64::from(*cycles) {
                    let day = start + c * period;
                    for &m in members {
                        out.push(ev(day, m, "join", *group));
                    }
                    for &m in members {
                        out.push(ev(day + period / 2, m, "leave", *group));
                    }
                }
            }
            MembershipSchedule::FlashCrowd {
                group,
                members,
                at,
                stagger,
                leave_at,
            } => {
                for (k, &m) in members.iter().enumerate() {
                    out.push(ev(at + stagger * k as u64, m, "join", *group));
                }
                if let Some(leave) = leave_at {
                    for &m in members {
                        out.push(ev(*leave, m, "leave", *group));
                    }
                }
            }
        }
        out
    }
}

/// Telemetry knobs: gauge sampling and structured-event export.
#[derive(Clone, Debug, Default, Deserialize, Serialize)]
pub struct TelemetrySpec {
    /// Per-tick gauge sampling interval (0 / absent = off).
    #[serde(default)]
    pub gauge_interval: Option<u64>,
    /// Stream the structured event trace to this JSONL file. Feed the
    /// result to `scmp-inspect` for convergence/audit/histogram queries.
    #[serde(default)]
    pub jsonl: Option<String>,
}

/// A complete scenario file.
#[derive(Clone, Debug, Deserialize, Serialize)]
pub struct ScenarioFile {
    /// Topology to simulate.
    pub topology: TopologySpec,
    /// m-router placement.
    pub m_router: MRouterSpec,
    /// Timeline.
    pub events: Vec<EventSpec>,
    /// Generated membership waves (diurnal churn, flash crowds),
    /// expanded into ordinary join/leave events by the runner and the
    /// delivery oracle alike.
    #[serde(default)]
    pub membership_schedule: Vec<MembershipSchedule>,
    /// Optional finite link capacities.
    #[serde(default)]
    pub capacity: Option<CapacitySpec>,
    /// Scheduled fault injections (links cut/restored, routers
    /// crashed/recovered), validated against the topology.
    #[serde(default)]
    pub faults: Vec<FaultSpec>,
    /// Robustness configuration (repair scan, retries, hot standby).
    #[serde(default)]
    pub robustness: Option<RobustnessSpec>,
    /// Reliable-multicast data tier (NACK recovery with repair caches).
    /// Present ⇒ on; absent ⇒ byte-identical to a tier-free build.
    #[serde(default)]
    pub reliability: Option<ReliabilitySpec>,
    /// Seeded per-link channel impairments (drop / duplicate / corrupt
    /// probabilities, reorder jitter), validated against the topology.
    /// Absent — or present with all-zero probabilities — the run is
    /// byte-identical to a channel-free one.
    #[serde(default)]
    pub channel: Option<ChannelPlan>,
    /// Telemetry: gauge sampling interval and JSONL trace export.
    #[serde(default)]
    pub telemetry: Option<TelemetrySpec>,
    /// Explicit simulation horizon. Required semantics: periodic timers
    /// (repair scan, heartbeat) re-arm forever, so such runs stop here
    /// instead of at quiescence. Defaults to the last event/fault time
    /// plus a settling margin when those timers are active.
    #[serde(default)]
    pub run_until: Option<u64>,
}

/// The tagged sends of a timeline, in time order.
pub type SentList = Vec<(GroupId, u64)>;
/// Every `(group, tag, receiver)` triple a correct protocol must
/// satisfy for a timeline.
pub type ExpectedList = Vec<(GroupId, u64, NodeId)>;

/// The delivery expectations a scenario's timeline implies: the sends
/// in time order and, for each, every `(group, tag, receiver)` triple a
/// correct protocol must satisfy — a send is expected at every DR whose
/// subnet had joined the group (net of leaves) strictly before it. The
/// runner scores `delivery_ratio` against exactly this set; the stress
/// oracle reuses it to name the members a failing run stranded.
pub fn expected_deliveries(spec: &ScenarioFile) -> (SentList, ExpectedList) {
    let all = expanded_events(spec);
    let mut ordered: Vec<&EventSpec> = all.iter().collect();
    ordered.sort_by_key(|ev| ev.time);
    let mut membership: std::collections::BTreeMap<(u32, u32), i64> =
        std::collections::BTreeMap::new();
    let mut expected: Vec<(GroupId, u64, NodeId)> = Vec::new();
    let mut sent: Vec<(GroupId, u64)> = Vec::new();
    let mut auto_tag = 0u64;
    for ev in &ordered {
        match ev.op.as_str() {
            "join" => *membership.entry((ev.group, ev.node)).or_insert(0) += 1,
            "leave" => *membership.entry((ev.group, ev.node)).or_insert(0) -= 1,
            "send" => {
                let tag = ev.tag.unwrap_or_else(|| {
                    auto_tag += 1;
                    auto_tag | 1 << 32 // auto tags never collide with explicit small tags
                });
                sent.push((GroupId(ev.group), tag));
                for (&(g, node), &count) in &membership {
                    if g == ev.group && count > 0 {
                        expected.push((GroupId(ev.group), tag, NodeId(node)));
                    }
                }
            }
            _ => {}
        }
    }
    (sent, expected)
}

/// The scenario's full timeline: the explicit `events` plus everything
/// the membership schedules expand into. The delivery oracle and the
/// runner both iterate exactly this list (sorted stably by time), so
/// the expectation set and the schedule can never disagree.
pub fn expanded_events(spec: &ScenarioFile) -> Vec<EventSpec> {
    let mut all = spec.events.clone();
    for sched in &spec.membership_schedule {
        all.extend(sched.expand());
    }
    all
}

/// Result summary the runner prints as JSON.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioResult {
    /// Resolved m-router node.
    pub m_router: u32,
    /// §IV-B metrics.
    pub data_overhead: u64,
    pub protocol_overhead: u64,
    pub max_end_to_end_delay: u64,
    /// End-to-end delay percentiles (log-bucket upper-bound estimates).
    pub p50_end_to_end_delay: u64,
    pub p99_end_to_end_delay: u64,
    pub drops: u64,
    pub queue_drops: u64,
    /// Robustness metrics (all zero / 1.0 on fault-free runs).
    pub faults_injected: u64,
    /// Fraction of membership-expected `(group, tag, receiver)` triples
    /// actually delivered.
    pub delivery_ratio: f64,
    /// Size of that expected set (0 ⇒ the ratio is vacuously 1.0).
    pub expected_deliveries: u64,
    /// Tree repairs completed by the m-router scan.
    pub repairs: u64,
    /// Worst failure→repair latency observed.
    pub max_repair_latency: u64,
    /// Overhead accrued while any node/link was down.
    pub data_overhead_during_failure: u64,
    pub control_overhead_during_failure: u64,
    /// Channel-impairment counters (all zero without a `channel` section).
    pub channel_dropped: u64,
    pub channel_duplicated: u64,
    pub channel_reordered: u64,
    pub channel_corrupted: u64,
    /// Control-plane hardening counters.
    pub retransmissions: u64,
    pub takeovers: u64,
    /// Repair-scan ticks spent with part of the domain unreachable from
    /// the acting m-router (0 on partition-free runs).
    pub partition_degraded_ticks: u64,
    /// Post-heal tree reconciliations (groups whose rebuilt tree
    /// readopted previously stranded members).
    pub reconciliations: u64,
    /// Reliability-tier counters (all zero without a `reliability`
    /// section).
    pub nacks_sent: u64,
    pub nacks_suppressed: u64,
    pub nacks_forwarded: u64,
    pub repair_cache_hits: u64,
    pub repair_cache_misses: u64,
    pub repair_cache_evictions: u64,
    pub recoveries: u64,
    pub p50_recovery_latency: u64,
    pub p99_recovery_latency: u64,
    /// Checksum-valid frames of an unimplemented kind, counted at decode.
    pub unknown_kind_drops: u64,
    /// Gauge samples captured (0 unless `telemetry.gauge_interval` set).
    pub gauge_samples: u64,
    /// Every *live* router claiming the m-router role when the run
    /// ended, in node order. More than one entry is a split brain; an
    /// empty list means the (sole) m-router died and nothing took over.
    pub m_routers_at_end: Vec<u32>,
    /// Per (group, tag): how many routers' subnets received it.
    pub deliveries: Vec<DeliveryLine>,
}

/// Delivery record for one payload.
#[derive(Clone, Debug, Serialize)]
pub struct DeliveryLine {
    pub group: u32,
    pub tag: u64,
    pub receivers: usize,
}

/// Per-section key allowlists. The vendored serde derive has no
/// `deny_unknown_fields`, so a misspelt knob (`"gauge_intervall"`)
/// would otherwise deserialise to the default and silently disable the
/// feature the author asked for. This pre-pass walks the raw JSON tree
/// and rejects any key the schema does not define, naming it.
mod schema {
    pub const TOP: &[&str] = &[
        "topology",
        "m_router",
        "events",
        "membership_schedule",
        "capacity",
        "faults",
        "robustness",
        "reliability",
        "channel",
        "telemetry",
        "run_until",
    ];
    pub const RELIABILITY: &[&str] = &[
        "nack_delay",
        "nack_jitter",
        "nack_retries",
        "cache_bytes",
        "announce_interval",
        "announce_rounds",
        "payload_bytes_min",
        "payload_bytes_max",
        "seed",
    ];
    pub const TELEMETRY: &[&str] = &["gauge_interval", "jsonl"];
    pub const ROBUSTNESS: &[&str] = &[
        "repair_interval",
        "join_retry",
        "leave_retry",
        "heartbeat_interval",
        "standby",
        "takeover_rebuild_delay",
        "tree_retry",
        "heartbeat_loss_tolerance",
    ];
    pub const CHANNEL: &[&str] = &["seed", "default", "links"];
    pub const CHANNEL_SPEC: &[&str] = &["drop", "duplicate", "corrupt", "reorder_window"];
    pub const CHANNEL_LINK: &[&str] = &["a", "b", "drop", "duplicate", "corrupt", "reorder_window"];
    pub const CAPACITY: &[&str] = &["link_tx", "queue_limit", "m_router_tx"];
    pub const EVENT: &[&str] = &["time", "node", "op", "group", "tag"];
    pub const TOPOLOGY: &[&str] = &["kind", "n", "seed", "degree", "nodes", "links"];
    pub const FAULT_ENTRY: &[&str] = &["time", "fault"];
    pub const FAULT_KIND: &[&str] = &[
        "kind",
        "a",
        "b",
        "node",
        "seed",
        "heal_at",
        "links",
        "restore_at",
        "cycles",
        "period",
    ];
    pub const MEMBERSHIP: &[&str] = &[
        "kind", "group", "members", "start", "period", "cycles", "at", "stagger", "leave_at",
    ];
}

fn check_keys(value: &serde_json::Value, allowed: &[&str], section: &str) -> Result<(), String> {
    let Some(fields) = value.as_object() else {
        return Ok(()); // shape errors are serde's job; this pass only names keys
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown key {key:?} in {section} (expected one of: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn check_each(
    value: &serde_json::Value,
    allowed: &[&str],
    section: &str,
    nested: Option<(&str, &[&str], &str)>,
) -> Result<(), String> {
    let Some(items) = value.as_array() else {
        return Ok(());
    };
    for (i, item) in items.iter().enumerate() {
        check_keys(item, allowed, &format!("{section}[{i}]"))?;
        if let Some((field, inner_allowed, inner_name)) = nested {
            if let Some(obj) = item.as_object() {
                if let Some((_, inner)) = obj.iter().find(|(k, _)| k == field) {
                    check_keys(
                        inner,
                        inner_allowed,
                        &format!("{section}[{i}].{inner_name}"),
                    )?;
                }
            }
        }
    }
    Ok(())
}

/// Reject unknown keys anywhere in the scenario schema, reporting the
/// offending key and where it appeared.
pub fn check_unknown_keys(json: &str) -> Result<(), String> {
    let tree: serde_json::Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    check_keys(&tree, schema::TOP, "scenario top level")?;
    let Some(fields) = tree.as_object() else {
        return Ok(());
    };
    for (key, value) in fields {
        match key.as_str() {
            "topology" => check_keys(value, schema::TOPOLOGY, "topology section")?,
            "telemetry" => check_keys(value, schema::TELEMETRY, "telemetry section")?,
            "robustness" => check_keys(value, schema::ROBUSTNESS, "robustness section")?,
            "reliability" => check_keys(value, schema::RELIABILITY, "reliability section")?,
            "channel" => {
                check_keys(value, schema::CHANNEL, "channel section")?;
                if let Some(obj) = value.as_object() {
                    if let Some((_, default)) = obj.iter().find(|(k, _)| k == "default") {
                        check_keys(default, schema::CHANNEL_SPEC, "channel.default")?;
                    }
                    if let Some((_, links)) = obj.iter().find(|(k, _)| k == "links") {
                        check_each(links, schema::CHANNEL_LINK, "channel.links", None)?;
                    }
                }
            }
            "capacity" => check_keys(value, schema::CAPACITY, "capacity section")?,
            "events" => check_each(value, schema::EVENT, "events", None)?,
            "membership_schedule" => {
                check_each(value, schema::MEMBERSHIP, "membership_schedule", None)?
            }
            "faults" => check_each(
                value,
                schema::FAULT_ENTRY,
                "faults",
                Some(("fault", schema::FAULT_KIND, "fault")),
            )?,
            _ => {}
        }
    }
    Ok(())
}

/// Parse and run a scenario, returning the summary. A `telemetry.jsonl`
/// path in the file streams the trace to disk.
pub fn run_scenario(json: &str) -> Result<ScenarioResult, String> {
    run_scenario_inner(json, None)
}

/// Like [`run_scenario`], but the full structured event trace is
/// captured in memory and returned alongside the summary — regardless
/// of whether the file asks for a `telemetry.jsonl` path (the path, if
/// any, is ignored in this mode so batch workers never contend on
/// files). This is the building block for parallel batch execution.
pub fn run_scenario_captured(json: &str) -> Result<(ScenarioResult, String), String> {
    let buf = SharedBuf::new();
    let result = run_scenario_inner(json, Some(&buf))?;
    Ok((result, buf.take_string()))
}

/// Run many scenarios on `jobs` workers. Output order matches input
/// order and every entry (summary and captured JSONL trace) is
/// byte-identical to a `jobs = 1` run: each scenario is an isolated
/// cell with its own engine, RNG streams, and trace buffer.
pub fn run_batch(jsons: &[String], jobs: usize) -> Vec<Result<(ScenarioResult, String), String>> {
    crate::sweep::SweepRunner::new(jobs).run(jsons, |_, json| run_scenario_captured(json))
}

fn run_scenario_inner(json: &str, capture: Option<&SharedBuf>) -> Result<ScenarioResult, String> {
    check_unknown_keys(json)?;
    let spec: ScenarioFile = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let topo = spec.topology.build();
    let paths = provider_for(&topo);
    let m_router = spec.m_router.resolve(&topo, &paths)?;
    for ev in &spec.events {
        if ev.node as usize >= topo.node_count() {
            return Err(format!("event node {} out of range", ev.node));
        }
        if !matches!(ev.op.as_str(), "join" | "leave" | "send") {
            return Err(format!("unknown op {:?}", ev.op));
        }
    }
    for (i, sched) in spec.membership_schedule.iter().enumerate() {
        sched.validate(i, &topo)?;
    }

    let fault_plan = FaultPlan::from(spec.faults.clone());
    fault_plan.validate(&topo)?;
    if let Some(chan) = &spec.channel {
        chan.validate(&topo)?;
    }

    let mut config = ScmpConfig::new(m_router);
    let mut perpetual_timers = false;
    if let Some(rob) = &spec.robustness {
        if let Some(v) = rob.repair_interval {
            config.repair_interval = v;
        }
        if let Some(v) = rob.join_retry {
            config.join_retry = v;
        }
        if let Some(v) = rob.leave_retry {
            config.leave_retry = v;
        }
        if let Some(v) = rob.heartbeat_interval {
            config.heartbeat_interval = v;
        }
        if let Some(v) = rob.standby {
            if v as usize >= topo.node_count() {
                return Err(format!("standby {v} out of range"));
            }
            config.standby = Some(NodeId(v));
        }
        if let Some(v) = rob.takeover_rebuild_delay {
            config.takeover_rebuild_delay = v;
        }
        if let Some(v) = rob.tree_retry {
            config.tree_retry = v;
        }
        if let Some(v) = rob.heartbeat_loss_tolerance {
            config.heartbeat_loss_tolerance = v;
        }
        perpetual_timers = config.repair_interval > 0 || config.heartbeat_interval > 0;
    }
    if let Some(rel) = &spec.reliability {
        config.reliability = Some(rel.build());
    }

    let mut engine = build_scmp_engine(topo.clone(), config);
    if let Some(cap) = &spec.capacity {
        let mut model = CapacityModel::uniform(cap.link_tx, cap.queue_limit);
        if let Some(tx) = cap.m_router_tx {
            model = model.with_node_tx(m_router, tx);
        }
        engine.set_capacity(model);
    }
    engine.schedule_fault_plan(&fault_plan);
    if let Some(model) = spec.channel.as_ref().and_then(ChannelModel::from_plan) {
        engine.set_channel(model);
    }
    if let Some(buf) = capture {
        engine.set_sink(Box::new(JsonlSink::new(buf.clone())));
    } else if let Some(tele) = &spec.telemetry {
        if let Some(path) = &tele.jsonl {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("telemetry jsonl {path:?}: {e}"))?;
            engine.set_sink(Box::new(JsonlSink::new(std::io::BufWriter::new(file))));
        }
    }
    if let Some(tele) = &spec.telemetry {
        if let Some(iv) = tele.gauge_interval {
            engine.set_gauge_interval(iv);
        }
    }

    // Delivery expectations from the membership timeline (time-ordered,
    // stable on ties), then the schedule itself — sends consume their
    // tags from `sent` so the two passes can never disagree.
    let (sent, expected) = expected_deliveries(&spec);
    let all_events = expanded_events(&spec);
    let mut ordered: Vec<&EventSpec> = all_events.iter().collect();
    ordered.sort_by_key(|ev| ev.time);
    let mut next_send = sent.iter();
    for ev in &ordered {
        let group = GroupId(ev.group);
        let app = match ev.op.as_str() {
            "join" => AppEvent::Join(group),
            "leave" => AppEvent::Leave(group),
            "send" => {
                let &(g, tag) = next_send.next().expect("one sent entry per send event");
                debug_assert_eq!(g, group);
                AppEvent::Send { group, tag }
            }
            _ => unreachable!("validated above"),
        };
        engine.schedule_app(ev.time, NodeId(ev.node), app);
    }

    let last_scheduled = all_events
        .iter()
        .map(|e| e.time)
        .chain(fault_plan.faults.iter().map(|f| f.time))
        .max()
        .unwrap_or(0);
    match spec.run_until {
        Some(t) => {
            engine.run_until(t);
        }
        None if perpetual_timers => {
            // Quiescence never happens with periodic timers armed; give
            // the protocol a generous settling window after the last
            // scheduled event.
            engine.run_until(last_scheduled + 2_000_000);
        }
        None => {
            engine.run_to_quiescence();
        }
    }

    engine.flush_telemetry();
    let gauge_samples = engine.gauges().len() as u64;
    let m_routers_at_end: Vec<u32> = topo
        .nodes()
        .filter(|&v| engine.node_is_up(v) && engine.router(v).is_m_router())
        .map(|v| v.0)
        .collect();
    let stats: &SimStats = engine.stats();
    let delivery_ratio = stats.delivery_ratio(expected.iter().copied());
    let deliveries = sent
        .iter()
        .map(|&(g, tag)| DeliveryLine {
            group: g.0,
            tag,
            receivers: topo
                .nodes()
                .filter(|&v| stats.delivery_count(g, tag, v) > 0)
                .count(),
        })
        .collect();
    Ok(ScenarioResult {
        m_router: m_router.0,
        data_overhead: stats.data_overhead,
        protocol_overhead: stats.protocol_overhead,
        max_end_to_end_delay: stats.max_end_to_end_delay,
        p50_end_to_end_delay: stats.e2e_delay_hist.p50(),
        p99_end_to_end_delay: stats.e2e_delay_hist.p99(),
        drops: stats.drops,
        queue_drops: stats.queue_drops,
        faults_injected: stats.faults_injected,
        delivery_ratio,
        expected_deliveries: expected.len() as u64,
        repairs: stats.repairs,
        max_repair_latency: stats.max_repair_latency,
        data_overhead_during_failure: stats.data_overhead_during_failure,
        control_overhead_during_failure: stats.control_overhead_during_failure,
        channel_dropped: stats.channel_dropped,
        channel_duplicated: stats.channel_duplicated,
        channel_reordered: stats.channel_reordered,
        channel_corrupted: stats.channel_corrupted,
        retransmissions: stats.retransmissions,
        takeovers: stats.takeovers,
        partition_degraded_ticks: stats.partition_degraded_ticks,
        reconciliations: stats.reconciliations,
        nacks_sent: stats.nacks_sent,
        nacks_suppressed: stats.nacks_suppressed,
        nacks_forwarded: stats.nacks_forwarded,
        repair_cache_hits: stats.repair_cache_hits,
        repair_cache_misses: stats.repair_cache_misses,
        repair_cache_evictions: stats.repair_cache_evictions,
        recoveries: stats.recoveries,
        p50_recovery_latency: stats.recovery_hist.p50(),
        p99_recovery_latency: stats.recovery_hist.p99(),
        unknown_kind_drops: stats.unknown_kind_drops,
        gauge_samples,
        m_routers_at_end,
        deliveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASIC: &str = r#"{
        "topology": { "kind": "arpanet", "seed": 1 },
        "m_router": "rule1",
        "events": [
            { "time": 0,      "node": 4,  "op": "join", "group": 1 },
            { "time": 1000,   "node": 9,  "op": "join", "group": 1 },
            { "time": 500000, "node": 15, "op": "send", "group": 1, "tag": 1 }
        ]
    }"#;

    #[test]
    fn basic_scenario_runs() {
        let r = run_scenario(BASIC).unwrap();
        assert_eq!(r.deliveries.len(), 1);
        assert_eq!(r.deliveries[0].receivers, 2, "both members heard tag 1");
        assert!(r.data_overhead > 0);
        assert!(r.protocol_overhead > 0);
    }

    #[test]
    fn fixed_m_router_and_leave() {
        let json = r#"{
            "topology": { "kind": "waxman", "n": 20, "seed": 3 },
            "m_router": 0,
            "events": [
                { "time": 0,      "node": 5, "op": "join",  "group": 2 },
                { "time": 100000, "node": 5, "op": "leave", "group": 2 },
                { "time": 600000, "node": 7, "op": "send",  "group": 2 }
            ]
        }"#;
        let r = run_scenario(json).unwrap();
        assert_eq!(r.m_router, 0);
        assert_eq!(r.deliveries[0].receivers, 0, "member left before the send");
    }

    #[test]
    fn capacity_section_applies() {
        let json = r#"{
            "topology": { "kind": "arpanet", "seed": 1 },
            "m_router": "rule2",
            "capacity": { "link_tx": 10, "queue_limit": 4, "m_router_tx": 1 },
            "events": [
                { "time": 0,     "node": 4,  "op": "join", "group": 1 },
                { "time": 50000, "node": 15, "op": "send", "group": 1 }
            ]
        }"#;
        let r = run_scenario(json).unwrap();
        assert_eq!(r.deliveries[0].receivers, 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_scenario("{").is_err());
        let bad_node = BASIC.replace("\"node\": 4", "\"node\": 99");
        assert!(run_scenario(&bad_node)
            .unwrap_err()
            .contains("out of range"));
        let bad_op = BASIC.replace("\"op\": \"send\"", "\"op\": \"explode\"");
        assert!(run_scenario(&bad_op).unwrap_err().contains("unknown op"));
        let bad_rule = BASIC.replace("\"rule1\"", "\"rule9\"");
        assert!(run_scenario(&bad_rule)
            .unwrap_err()
            .contains("placement rule"));
    }

    #[test]
    fn custom_topology() {
        // The paper's Fig. 5 expressed inline.
        let json = r#"{
            "topology": { "kind": "custom", "nodes": 6, "links": [
                [0,1,3,6],[0,2,4,5],[0,3,2,6],[1,2,3,2],[1,4,9,3],[2,3,4,1],[2,5,7,2]
            ]},
            "m_router": 0,
            "events": [
                { "time": 0,     "node": 4, "op": "join", "group": 1 },
                { "time": 100,   "node": 3, "op": "join", "group": 1 },
                { "time": 200,   "node": 5, "op": "join", "group": 1 },
                { "time": 10000, "node": 4, "op": "send", "group": 1, "tag": 1 }
            ]
        }"#;
        let r = run_scenario(json).unwrap();
        assert_eq!(r.deliveries[0].receivers, 3);
        // The Fig. 5(d) tree costs 17; one on-tree send = 17 data units
        // plus the per-hop copies... data overhead equals the tree cost
        // because the source is a member and every tree edge carries the
        // packet exactly once.
        assert_eq!(r.data_overhead, 17);
    }

    #[test]
    fn expectations_and_role_probe_surface_in_result() {
        let r = run_scenario(BASIC).unwrap();
        assert_eq!(
            r.expected_deliveries, 2,
            "two members joined before the send"
        );
        assert_eq!(
            r.m_routers_at_end,
            vec![r.m_router],
            "exactly the resolved m-router holds the role on a healthy run"
        );
        let spec: ScenarioFile = serde_json::from_str(BASIC).unwrap();
        let (sent, expected) = expected_deliveries(&spec);
        assert_eq!(sent, vec![(GroupId(1), 1)]);
        assert_eq!(
            expected,
            vec![(GroupId(1), 1, NodeId(4)), (GroupId(1), 1, NodeId(9))]
        );
    }

    #[test]
    fn deterministic() {
        let a = run_scenario(BASIC).unwrap();
        let b = run_scenario(BASIC).unwrap();
        assert_eq!(a.data_overhead, b.data_overhead);
        assert_eq!(a.max_end_to_end_delay, b.max_end_to_end_delay);
    }

    /// Fig. 5 with the 0-2 tree link cut mid-session and the repair scan
    /// enabled.
    const FAULTY: &str = r#"{
        "topology": { "kind": "custom", "nodes": 6, "links": [
            [0,1,3,6],[0,2,4,5],[0,3,2,6],[1,2,3,2],[1,4,9,3],[2,3,4,1],[2,5,7,2]
        ]},
        "m_router": 0,
        "robustness": { "repair_interval": 2000 },
        "faults": [
            { "time": 20000, "fault": { "kind": "link_down", "a": 0, "b": 2 } }
        ],
        "events": [
            { "time": 0,     "node": 4, "op": "join", "group": 1 },
            { "time": 100,   "node": 3, "op": "join", "group": 1 },
            { "time": 200,   "node": 5, "op": "join", "group": 1 },
            { "time": 10000, "node": 4, "op": "send", "group": 1, "tag": 1 },
            { "time": 40000, "node": 4, "op": "send", "group": 1, "tag": 2 }
        ],
        "run_until": 100000
    }"#;

    #[test]
    fn faults_section_injects_and_repairs() {
        let r = run_scenario(FAULTY).unwrap();
        assert_eq!(r.faults_injected, 1);
        assert!(r.repairs >= 1, "repair scan must fire after the cut");
        // Both sends reach all three members thanks to the repair.
        assert!(
            (r.delivery_ratio - 1.0).abs() < 1e-9,
            "ratio {}",
            r.delivery_ratio
        );
        assert!(r.max_repair_latency <= 4_000);
        assert!(
            r.data_overhead_during_failure > 0,
            "post-cut send is charged"
        );
    }

    #[test]
    fn delivery_ratio_degrades_without_repair() {
        // Same scenario but no robustness: the cut strands members 3/5
        // until... forever (nothing repairs the tree).
        let json = FAULTY.replace("\"robustness\": { \"repair_interval\": 2000 },", "");
        let r = run_scenario(&json).unwrap();
        assert_eq!(r.repairs, 0);
        // tag 1 reaches everyone, tag 2 only node 4 of the three
        // members: 4 of 6 expected triples.
        assert!(
            (r.delivery_ratio - 4.0 / 6.0).abs() < 1e-9,
            "ratio {}",
            r.delivery_ratio
        );
    }

    #[test]
    fn fault_validation_errors() {
        let bad_link = FAULTY.replace("\"a\": 0, \"b\": 2", "\"a\": 0, \"b\": 5");
        let err = run_scenario(&bad_link).unwrap_err();
        assert!(
            err.contains("fault[0]") && err.contains("not in topology"),
            "{err}"
        );
        let bad_node = FAULTY.replace(
            "{ \"kind\": \"link_down\", \"a\": 0, \"b\": 2 }",
            "{ \"kind\": \"router_crash\", \"node\": 77 }",
        );
        assert!(run_scenario(&bad_node)
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn telemetry_section_samples_gauges_and_exports_jsonl() {
        let path = std::env::temp_dir().join("scmp_scenario_tele_test.jsonl");
        let json = BASIC.replace(
            "\"m_router\": \"rule1\",",
            &format!(
                "\"m_router\": \"rule1\",\n  \"telemetry\": {{ \"gauge_interval\": 1000, \"jsonl\": {:?} }},",
                path.to_str().unwrap()
            ),
        );
        let r = run_scenario(&json).unwrap();
        assert!(r.gauge_samples > 0, "gauges were sampled");
        assert!(r.p50_end_to_end_delay > 0);
        assert!(r.p50_end_to_end_delay <= r.p99_end_to_end_delay);
        assert!(r.p99_end_to_end_delay <= r.max_end_to_end_delay.next_power_of_two());
        let trace = scmp_telemetry::Trace::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let audit = trace.audit();
        assert!(audit.passed(), "scenario trace audits clean");
        assert_eq!(audit.deliveries, 2, "both members heard tag 1");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_keys_are_rejected_by_name() {
        // The motivating bug: a typo'd telemetry knob used to silently
        // deserialise to the default and disable gauge sampling.
        let typo = BASIC.replace(
            "\"m_router\": \"rule1\",",
            "\"m_router\": \"rule1\",\n  \"telemetry\": { \"gauge_intervall\": 1000 },",
        );
        let err = run_scenario(&typo).unwrap_err();
        assert!(
            err.contains("gauge_intervall") && err.contains("telemetry"),
            "error must name the bad key and its section: {err}"
        );

        let top = BASIC.replace("\"m_router\"", "\"m_routter\"");
        let err = run_scenario(&top).unwrap_err();
        assert!(err.contains("m_routter"), "top-level typo named: {err}");

        let event = BASIC.replace("\"tag\": 1", "\"tagg\": 1");
        let err = run_scenario(&event).unwrap_err();
        assert!(
            err.contains("tagg") && err.contains("events[2]"),
            "event typo located: {err}"
        );

        let fault = FAULTY.replace("\"time\": 20000, \"fault\"", "\"when\": 20000, \"fault\"");
        let err = run_scenario(&fault).unwrap_err();
        assert!(
            err.contains("\"when\"") && err.contains("faults[0]"),
            "fault typo located: {err}"
        );

        let kind = FAULTY.replace("\"a\": 0, \"b\": 2", "\"a\": 0, \"dst\": 2");
        let err = run_scenario(&kind).unwrap_err();
        assert!(
            err.contains("dst") && err.contains("faults[0].fault"),
            "fault-kind typo located: {err}"
        );

        let topo = BASIC.replace("\"seed\": 1", "\"sed\": 1");
        let err = run_scenario(&topo).unwrap_err();
        assert!(err.contains("\"sed\""), "topology typo named: {err}");
    }

    #[test]
    fn captured_run_matches_plain_run_and_traces() {
        let (r, trace) = run_scenario_captured(FAULTY).unwrap();
        let plain = run_scenario(FAULTY).unwrap();
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "capture must not perturb the simulation"
        );
        assert!(!trace.is_empty(), "capture mode always records the trace");
        let parsed = scmp_telemetry::Trace::parse(&trace).unwrap();
        assert!(parsed.audit().passed(), "captured trace audits clean");
    }

    #[test]
    fn batch_is_order_stable_and_jobs_invariant() {
        let jsons: Vec<String> = vec![
            BASIC.to_string(),
            FAULTY.to_string(),
            "{ \"nonsense\": true }".to_string(),
            BASIC.to_string(),
        ];
        let serial = run_batch(&jsons, 1);
        let parallel = run_batch(&jsons, 4);
        assert_eq!(serial.len(), 4);
        assert!(
            serial[2].is_err(),
            "bad file fails without sinking the batch"
        );
        for (s, p) in serial.iter().zip(&parallel) {
            match (s, p) {
                (Ok((sr, st)), Ok((pr, pt))) => {
                    assert_eq!(
                        serde_json::to_string(sr).unwrap(),
                        serde_json::to_string(pr).unwrap()
                    );
                    assert_eq!(st, pt, "traces byte-identical across jobs");
                }
                (Err(se), Err(pe)) => assert_eq!(se, pe),
                other => panic!("jobs changed an outcome: {other:?}"),
            }
        }
    }

    #[test]
    fn faulty_scenario_is_deterministic() {
        let a = run_scenario(FAULTY).unwrap();
        let b = run_scenario(FAULTY).unwrap();
        assert_eq!(a.data_overhead, b.data_overhead);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.max_repair_latency, b.max_repair_latency);
        assert_eq!(a.delivery_ratio, b.delivery_ratio);
    }

    #[test]
    fn channel_section_impairs_and_replays() {
        let json = BASIC.replace(
            "\"m_router\": \"rule1\",",
            "\"m_router\": \"rule1\",\n  \
             \"robustness\": { \"join_retry\": 3000, \"tree_retry\": 3000 },\n  \
             \"channel\": { \"seed\": 5, \"default\": { \"drop\": 0.2, \"duplicate\": 0.05 } },",
        );
        let (a, trace_a) = run_scenario_captured(&json).unwrap();
        assert!(a.channel_dropped > 0, "a 20% channel must drop something");
        assert!(
            a.retransmissions > 0,
            "dropped control traffic must trigger retries"
        );
        let (b, trace_b) = run_scenario_captured(&json).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "lossy runs replay bit-for-bit"
        );
        assert_eq!(trace_a, trace_b, "lossy traces byte-identical");
    }

    #[test]
    fn all_zero_channel_is_byte_identical_to_no_channel() {
        let with = BASIC.replace(
            "\"m_router\": \"rule1\",",
            "\"m_router\": \"rule1\",\n  \
             \"channel\": { \"seed\": 9, \"default\": { \"drop\": 0.0 }, \
             \"links\": [ { \"a\": 0, \"b\": 1 } ] },",
        );
        let (r0, t0) = run_scenario_captured(BASIC).unwrap();
        let (r1, t1) = run_scenario_captured(&with).unwrap();
        assert_eq!(
            serde_json::to_string(&r0).unwrap(),
            serde_json::to_string(&r1).unwrap(),
            "all-zero channel must not perturb the summary"
        );
        assert_eq!(
            t0, t1,
            "all-zero channel must leave the trace byte-identical"
        );
    }

    #[test]
    fn reliability_recovers_channel_loss() {
        // A 20% lossy channel with the reliability tier on: receivers
        // must detect gaps, NACK, and recover to a perfect delivery
        // ratio that the same channel without the tier cannot reach.
        let base = r#"{
            "topology": { "kind": "arpanet", "seed": 1 },
            "m_router": "rule1",
            "robustness": { "join_retry": 3000, "tree_retry": 3000 },
            "channel": { "seed": 5, "default": { "drop": 0.2 } },
            "events": [
                { "time": 0,      "node": 4,  "op": "join", "group": 1 },
                { "time": 1000,   "node": 9,  "op": "join", "group": 1 },
                { "time": 500000, "node": 15, "op": "send", "group": 1, "tag": 1 },
                { "time": 520000, "node": 15, "op": "send", "group": 1, "tag": 2 },
                { "time": 540000, "node": 15, "op": "send", "group": 1, "tag": 3 },
                { "time": 560000, "node": 15, "op": "send", "group": 1, "tag": 4 },
                { "time": 580000, "node": 15, "op": "send", "group": 1, "tag": 5 }
            ],
            "run_until": 1500000
        }"#;
        let with = base.replace(
            "\"robustness\"",
            "\"reliability\": { \"nack_delay\": 300, \"nack_jitter\": 200 },\n  \"robustness\"",
        );
        let off = run_scenario(base).unwrap();
        let (on, trace) = run_scenario_captured(&with).unwrap();
        assert_eq!(off.nacks_sent, 0, "tier absent means tier silent");
        assert_eq!(off.recoveries, 0);
        assert!(on.nacks_sent > 0, "losses must trigger NACKs");
        assert!(on.recoveries > 0, "NACKs must close gaps");
        assert!(
            on.delivery_ratio >= off.delivery_ratio,
            "reliability must not lose ground: {} < {}",
            on.delivery_ratio,
            off.delivery_ratio
        );
        assert!(
            (on.delivery_ratio - 1.0).abs() < 1e-9,
            "recovered ratio {}",
            on.delivery_ratio
        );
        assert!(on.p50_recovery_latency > 0);
        assert!(on.p50_recovery_latency <= on.p99_recovery_latency);
        let parsed = scmp_telemetry::Trace::parse(&trace).unwrap();
        assert!(
            parsed.audit().passed(),
            "repairs must not duplicate deliveries: {}",
            parsed.audit().report()
        );

        // Deterministic replay, like every other scenario feature.
        let again = run_scenario(&with).unwrap();
        assert_eq!(
            serde_json::to_string(&on).unwrap(),
            serde_json::to_string(&again).unwrap()
        );

        // Typo'd reliability knobs are named, not silently defaulted.
        let typo = with.replace("nack_delay", "nack_dellay");
        let err = run_scenario(&typo).unwrap_err();
        assert!(
            err.contains("nack_dellay") && err.contains("reliability"),
            "{err}"
        );
    }

    #[test]
    fn reliability_on_lossless_run_changes_nothing_observable() {
        // On a clean wire the tier is pure bookkeeping: no NACKs, no
        // repairs, the same deliveries, and a clean audit.
        let with = BASIC.replace(
            "\"m_router\": \"rule1\",",
            "\"m_router\": \"rule1\",\n  \"reliability\": {},",
        );
        let plain = run_scenario(BASIC).unwrap();
        let (r, trace) = run_scenario_captured(&with).unwrap();
        assert_eq!(r.nacks_sent, 0);
        assert_eq!(r.recoveries, 0);
        assert_eq!(r.repair_cache_hits + r.repair_cache_misses, 0);
        assert_eq!(r.delivery_ratio, plain.delivery_ratio);
        assert_eq!(r.deliveries[0].receivers, plain.deliveries[0].receivers);
        assert!(scmp_telemetry::Trace::parse(&trace)
            .unwrap()
            .audit()
            .passed());
    }

    #[test]
    fn channel_validation_errors_surface() {
        let bad = BASIC.replace(
            "\"m_router\": \"rule1\",",
            "\"m_router\": \"rule1\",\n  \
             \"channel\": { \"links\": [ { \"a\": 0, \"b\": 99, \"drop\": 0.1 } ] },",
        );
        let err = run_scenario(&bad).unwrap_err();
        assert!(
            err.contains("channel.links[0]") && err.contains("out of range"),
            "{err}"
        );

        let typo = BASIC.replace(
            "\"m_router\": \"rule1\",",
            "\"m_router\": \"rule1\",\n  \"channel\": { \"default\": { \"dropp\": 0.1 } },",
        );
        let err = run_scenario(&typo).unwrap_err();
        assert!(
            err.contains("dropp") && err.contains("channel.default"),
            "{err}"
        );

        let prob = BASIC.replace(
            "\"m_router\": \"rule1\",",
            "\"m_router\": \"rule1\",\n  \"channel\": { \"default\": { \"drop\": 1.5 } },",
        );
        let err = run_scenario(&prob).unwrap_err();
        assert!(err.contains("not in [0, 1]"), "{err}");
    }

    /// Flash crowd joining before the send, with a later diurnal cycle.
    const SCHEDULED: &str = r#"{
        "topology": { "kind": "arpanet", "seed": 1 },
        "m_router": "rule1",
        "membership_schedule": [
            { "kind": "flash_crowd", "group": 1, "members": [4, 9, 15],
              "at": 0, "stagger": 500 },
            { "kind": "diurnal_churn", "group": 1, "members": [7],
              "start": 600000, "period": 100000, "cycles": 2 }
        ],
        "events": [
            { "time": 500000, "node": 3, "op": "send", "group": 1, "tag": 1 },
            { "time": 620000, "node": 3, "op": "send", "group": 1, "tag": 2 },
            { "time": 680000, "node": 3, "op": "send", "group": 1, "tag": 3 }
        ],
        "run_until": 900000
    }"#;

    #[test]
    fn membership_schedule_drives_oracle_and_run_alike() {
        let spec: ScenarioFile = serde_json::from_str(SCHEDULED).unwrap();
        let (sent, expected) = expected_deliveries(&spec);
        assert_eq!(sent.len(), 3);
        // tag 1: the flash crowd (3 DRs); tag 2: crowd + node 7 mid-day;
        // tag 3: crowd only again (7 left at the half-period, 650000).
        let expects_of = |tag: u64| expected.iter().filter(|e| e.1 == tag).count();
        assert_eq!(expects_of(1), 3);
        assert_eq!(expects_of(2), 4);
        assert_eq!(expects_of(3), 3);

        let r = run_scenario(SCHEDULED).unwrap();
        assert_eq!(r.expected_deliveries, 10);
        assert!(
            (r.delivery_ratio - 1.0).abs() < 1e-9,
            "schedule-driven membership delivers in full: {}",
            r.delivery_ratio
        );
        assert_eq!(r.deliveries[1].receivers, 4, "day member heard tag 2");
        assert_eq!(r.deliveries[2].receivers, 3, "night: 7 is gone again");
    }

    #[test]
    fn membership_schedule_validation_errors_are_named() {
        for (breakage, needle) in [
            ("\"cycles\": 2", "\"cycles\": 0"),
            ("\"period\": 100000", "\"period\": 1"),
            ("\"members\": [7]", "\"members\": []"),
            ("\"members\": [7]", "\"members\": [99]"),
        ] {
            let bad = SCHEDULED.replace(breakage, needle);
            let err = run_scenario(&bad).unwrap_err();
            assert!(
                err.contains("membership_schedule[1]"),
                "{needle}: error must name the entry: {err}"
            );
        }
        let bad = SCHEDULED.replace(
            "\"at\": 0, \"stagger\": 500",
            "\"at\": 0, \"stagger\": 500, \"leave_at\": 800",
        );
        let err = run_scenario(&bad).unwrap_err();
        assert!(
            err.contains("membership_schedule[0]") && err.contains("leave_at"),
            "{err}"
        );
    }

    #[test]
    fn membership_schedule_typos_are_rejected_by_name() {
        let typo = SCHEDULED.replace("\"stagger\": 500", "\"staggger\": 500");
        let err = run_scenario(&typo).unwrap_err();
        assert!(
            err.contains("staggger") && err.contains("membership_schedule[0]"),
            "{err}"
        );
    }

    #[test]
    fn payload_size_keys_reach_the_reliability_config() {
        let spec: ReliabilitySpec =
            serde_json::from_str(r#"{ "payload_bytes_min": 16, "payload_bytes_max": 1024 }"#)
                .unwrap();
        let cfg = spec.build();
        assert_eq!(cfg.payload_bytes_min, 16);
        assert_eq!(cfg.payload_bytes_max, 1024);

        let typo = BASIC.replace(
            "\"m_router\": \"rule1\",",
            "\"m_router\": \"rule1\",\n  \"reliability\": { \"payload_bytes_mim\": 16 },",
        );
        let err = run_scenario(&typo).unwrap_err();
        assert!(
            err.contains("payload_bytes_mim") && err.contains("reliability"),
            "{err}"
        );
    }

    /// A partition family fault driven entirely from a scenario file:
    /// the seeded cut strands part of the ARPANET mid-session, the heal
    /// restores it, and the repair scan reconciles the trees.
    const PARTITIONED: &str = r#"{
        "topology": { "kind": "arpanet", "seed": 1 },
        "m_router": 10,
        "robustness": { "repair_interval": 2000 },
        "faults": [
            { "time": 60000, "fault": { "kind": "partition", "seed": 7, "heal_at": 160000 } }
        ],
        "events": [
            { "time": 0,      "node": 3,  "op": "join", "group": 1 },
            { "time": 100,    "node": 6,  "op": "join", "group": 1 },
            { "time": 200,    "node": 15, "op": "join", "group": 1 },
            { "time": 300,    "node": 17, "op": "join", "group": 1 },
            { "time": 250000, "node": 13, "op": "send", "group": 1, "tag": 1 }
        ],
        "run_until": 300000
    }"#;

    #[test]
    fn partition_family_runs_degrades_and_reconciles() {
        let r = run_scenario(PARTITIONED).unwrap();
        assert!(r.faults_injected >= 2, "cut + heal both inject");
        assert!(
            r.partition_degraded_ticks > 0,
            "the scan must notice the unreachable side"
        );
        assert!(
            (r.delivery_ratio - 1.0).abs() < 1e-9,
            "post-heal send reaches every member: {}",
            r.delivery_ratio
        );
        assert_eq!(r.m_routers_at_end, vec![10], "no split brain");
        let b = run_scenario(PARTITIONED).unwrap();
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "partition runs replay bit-for-bit"
        );
    }

    #[test]
    fn family_fault_keys_pass_the_schema_and_validate() {
        // A typo'd family key is rejected by name…
        let typo = PARTITIONED.replace("\"heal_at\": 160000", "\"heal_et\": 160000");
        let err = run_scenario(&typo).unwrap_err();
        assert!(
            err.contains("heal_et") && err.contains("faults[0].fault"),
            "{err}"
        );
        // …and the other two families parse through the same schema.
        let outage = PARTITIONED.replace(
            "{ \"kind\": \"partition\", \"seed\": 7, \"heal_at\": 160000 }",
            "{ \"kind\": \"regional_outage\", \"seed\": 7, \"links\": 3, \"restore_at\": 160000 }",
        );
        let r = run_scenario(&outage).unwrap();
        assert!(r.faults_injected >= 2);
        let storm = PARTITIONED.replace(
            "{ \"kind\": \"partition\", \"seed\": 7, \"heal_at\": 160000 }",
            "{ \"kind\": \"flap_storm\", \"seed\": 7, \"links\": 2, \"cycles\": 3, \"period\": 10000 }",
        );
        let r = run_scenario(&storm).unwrap();
        assert!(r.faults_injected >= 6, "each flap cycle injects twice");
    }
}
