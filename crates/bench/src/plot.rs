//! Minimal self-contained SVG line charts — turns the harness JSON into
//! figure artifacts without any plotting dependency.
//!
//! Deliberately small: linear or log₁₀ Y axis, auto-scaled ticks, one
//! polyline + markers per series, legend. Enough to eyeball the
//! reproduced Figs. 7–9 next to the paper.

use std::fmt::Write;

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points, in x order.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Clone, Debug)]
pub struct ChartConfig {
    /// Title printed above the plot.
    pub title: String,
    /// Axis captions.
    pub x_label: String,
    pub y_label: String,
    /// Use a log₁₀ Y axis (the paper's Fig. 8(e,f) trick).
    pub log_y: bool,
}

const W: f64 = 640.0;
const H: f64 = 420.0;
const ML: f64 = 70.0; // margins
const MR: f64 = 150.0;
const MT: f64 = 40.0;
const MB: f64 = 55.0;
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

/// Render the chart as an SVG document.
///
/// # Panics
/// If no series has any points, or a log-scale chart sees y ≤ 0.
pub fn render(cfg: &ChartConfig, series: &[Series]) -> String {
    let pts = || series.iter().flat_map(|s| s.points.iter().copied());
    assert!(pts().count() > 0, "nothing to plot");
    let tx = |y: f64| -> f64 {
        if cfg.log_y {
            assert!(y > 0.0, "log scale needs positive values");
            y.log10()
        } else {
            y
        }
    };
    let (mut xmin, mut xmax) = (f64::MAX, f64::MIN);
    let (mut ymin, mut ymax) = (f64::MAX, f64::MIN);
    for (x, y) in pts() {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(tx(y));
        ymax = ymax.max(tx(y));
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    // A little headroom on Y.
    let pad = (ymax - ymin) * 0.05;
    let (ymin, ymax) = (ymin - pad, ymax + pad);

    let px = |x: f64| ML + (x - xmin) / (xmax - xmin) * (W - ML - MR);
    let py = |y: f64| H - MB - (tx(y) - ymin) / (ymax - ymin) * (H - MT - MB);

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="12">"#
    );
    let _ = writeln!(svg, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
    let _ = writeln!(
        svg,
        r#"<text x="{:.0}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        (W - MR + ML) / 2.0,
        esc(&cfg.title)
    );
    // Axes.
    let _ = writeln!(
        svg,
        r#"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{}" stroke="black"/>"#,
        H - MB
    );
    let _ = writeln!(
        svg,
        r#"<line x1="{ML}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        H - MB,
        W - MR,
        H - MB
    );
    // Ticks: 5 per axis.
    for i in 0..=4 {
        let fx = xmin + (xmax - xmin) * i as f64 / 4.0;
        let x = px(fx);
        let _ = writeln!(
            svg,
            r#"<line x1="{x:.1}" y1="{}" x2="{x:.1}" y2="{}" stroke="black"/>"#,
            H - MB,
            H - MB + 5.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{x:.1}" y="{}" text-anchor="middle">{}</text>"#,
            H - MB + 20.0,
            fmt_num(fx)
        );
        let fy = ymin + (ymax - ymin) * i as f64 / 4.0;
        let y = H - MB - (fy - ymin) / (ymax - ymin) * (H - MT - MB);
        let shown = if cfg.log_y { 10f64.powf(fy) } else { fy };
        let _ = writeln!(
            svg,
            r#"<line x1="{}" y1="{y:.1}" x2="{ML}" y2="{y:.1}" stroke="black"/>"#,
            ML - 5.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{:.1}" text-anchor="end">{}</text>"#,
            ML - 9.0,
            y + 4.0,
            fmt_num(shown)
        );
    }
    // Axis labels.
    let _ = writeln!(
        svg,
        r#"<text x="{:.0}" y="{:.0}" text-anchor="middle">{}</text>"#,
        (W - MR + ML) / 2.0,
        H - 12.0,
        esc(&cfg.x_label)
    );
    let _ = writeln!(
        svg,
        r#"<text x="16" y="{:.0}" text-anchor="middle" transform="rotate(-90 16 {:.0})">{}</text>"#,
        (H - MB + MT) / 2.0,
        (H - MB + MT) / 2.0,
        esc(&format!(
            "{}{}",
            esc(&cfg.y_label),
            if cfg.log_y { " (log)" } else { "" }
        ))
    );
    // Series.
    for (k, s) in series.iter().enumerate() {
        let color = COLORS[k % COLORS.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
            .collect();
        let _ = writeln!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            path.join(" ")
        );
        for &(x, y) in &s.points {
            let _ = writeln!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                px(x),
                py(y)
            );
        }
        // Legend.
        let ly = MT + 18.0 * k as f64;
        let _ = writeln!(
            svg,
            r#"<line x1="{:.0}" y1="{ly:.0}" x2="{:.0}" y2="{ly:.0}" stroke="{color}" stroke-width="3"/>"#,
            W - MR + 10.0,
            W - MR + 34.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.0}" y="{:.0}">{}</text>"#,
            W - MR + 40.0,
            ly + 4.0,
            esc(&s.label)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn fmt_num(v: f64) -> String {
    let a = v.abs();
    if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.0}k", v / 1e3)
    } else if a >= 10.0 || (v - v.round()).abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(log: bool) -> ChartConfig {
        ChartConfig {
            title: "T<est> & more".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_y: log,
        }
    }

    fn demo() -> Vec<Series> {
        vec![
            Series {
                label: "a".into(),
                points: vec![(0.0, 10.0), (1.0, 20.0), (2.0, 15.0)],
            },
            Series {
                label: "b".into(),
                points: vec![(0.0, 100.0), (2.0, 400.0)],
            },
        ]
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = render(&cfg(false), &demo());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 5);
        // Title escaped.
        assert!(svg.contains("T&lt;est&gt; &amp; more"));
    }

    #[test]
    fn log_scale_positions_differ() {
        let lin = render(&cfg(false), &demo());
        let log = render(&cfg(true), &demo());
        assert_ne!(lin, log);
        assert!(log.contains("(log)"));
    }

    #[test]
    fn single_point_does_not_divide_by_zero() {
        let s = vec![Series {
            label: "solo".into(),
            points: vec![(5.0, 7.0)],
        }];
        let svg = render(&cfg(false), &s);
        assert!(svg.contains("<circle"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_panics() {
        render(&cfg(false), &[]);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn log_rejects_zero() {
        let s = vec![Series {
            label: "z".into(),
            points: vec![(0.0, 0.0)],
        }];
        render(&cfg(true), &s);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(2_500_000.0), "2.5M");
        assert_eq!(fmt_num(12_000.0), "12k");
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(0.5), "0.50");
    }
}
