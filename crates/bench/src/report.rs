//! Table printing and JSON result persistence shared by all experiment
//! binaries.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("{}", padded.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Serialise `value` as pretty JSON into `bench_results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("bench_results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialise {name}: {e}"),
    }
}

/// Arithmetic mean, 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
