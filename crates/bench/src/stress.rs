//! STRESS scenario explorer: boundary-point search over the scenario
//! space, failure minimization, and the pinned regression corpus.
//!
//! The paper validates SCMP on a handful of hand-picked scenarios; so
//! did our first five scenario files. Following the STRESS method
//! (Helmy et al., *Systematic Performance Evaluation of Multipoint
//! Protocols*), this module replaces hand-picking with a search:
//!
//! 1. **Generator** — [`StressPoint`] indexes a scenario space of
//!    channel impairments × fault schedules × membership churn ×
//!    timer/ARQ settings × topology; [`synthesize`] maps a point to a
//!    concrete [`ScenarioFile`] deterministically (no RNG — the point
//!    *is* the scenario).
//! 2. **Oracle** — [`evaluate`] runs the scenario and checks the
//!    invariant suite: *hard* violations (duplicate delivery,
//!    unaccounted loss, split-brain m-router roles, an imperfect run
//!    with nothing to blame) are protocol bugs anywhere in the space;
//!    *boundary* predicates (incomplete delivery, a stranded member, a
//!    false or missed takeover, repair latency past its bound) mark the
//!    edge of the operating envelope.
//! 3. **Search** — [`search`] sweeps random points (warm-up), then runs
//!    coordinate descent on each distinct failure signature: per axis,
//!    binary-search the smallest hostility index that still fails, i.e.
//!    the *boundary point* where the invariant first breaks. All
//!    batches run on the PR 4 [`SweepRunner`], so the whole search is
//!    byte-identical across `--jobs` counts.
//! 4. **Minimizer** — [`minimize`] delta-debugs a failing scenario's
//!    event + fault schedule down to a minimal reproducer with the
//!    same failure signature.
//!
//! Minimized boundary scenarios are pinned as [`CorpusEntry`] JSON
//! files under `tests/scenarios/corpus/`, which `cargo test` replays
//! forever after (see `tests/tests/corpus_replay.rs`).

use crate::scenario_file::{
    expected_deliveries, run_scenario_captured, EventSpec, MRouterSpec, RobustnessSpec,
    ScenarioFile, ScenarioResult, TopologySpec,
};
use crate::sweep::SweepRunner;
use rand::Rng;
use scmp_net::rng::rng_for;
use scmp_sim::{partition_cut, ChannelPlan, ChannelSpec, FaultKind, FaultSpec};
use scmp_telemetry::{EventKind, Trace};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

// ---------------------------------------------------------------------------
// Scenario space
// ---------------------------------------------------------------------------

/// Fig. 5 topology index (6 nodes, tick-scale delays).
pub const FIG5: u8 = 0;
/// ARPANET topology index (20 nodes, seeded weights).
pub const ARPANET: u8 = 1;

/// Retry-base axis, least → most hostile: fast retries recover best;
/// `0` disables the ARQ entirely. (A "too short" base is *also* hostile
/// — spurious retransmissions — but that would break the axis's
/// monotonicity, so the searched range starts at a sound base.)
pub const RETRY_BASES: &[u64] = &[500, 1_000, 2_000, 4_000, 0];

/// Repair-scan-period axis, least → most hostile (`0` = scan off).
pub const REPAIR_INTERVALS: &[u64] = &[1_000, 2_000, 4_000, 8_000, 0];

/// Heartbeat-loss-tolerance axis, least → most hostile: a hair-trigger
/// watchdog false-fires under loss long before a patient one.
pub const TOLERANCES: &[u32] = &[12, 8, 6, 4, 3, 2];

/// Payloads sent after the convergence window in every synthesized
/// scenario.
pub const SENDS: u64 = 12;

/// One point in the scenario space. Every field is a small index;
/// [`synthesize`] maps indices to concrete knob values. On every
/// searched axis, index 0 is the *least* hostile setting and hostility
/// grows monotonically with the index — the invariant coordinate
/// descent relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct StressPoint {
    /// Topology: [`FIG5`] or [`ARPANET`]. Not searched.
    pub topo: u8,
    /// Channel + (ARPANET) weight seed. Not searched.
    pub seed: u64,
    /// Uniform drop probability = `loss × 0.02` (0..=15 → 0%..30%).
    pub loss: u8,
    /// Duplication probability = `dup × 0.02` (0..=5 → 0%..10%).
    pub dup: u8,
    /// Reorder jitter window = `reorder × 2` ticks (0..=4).
    pub reorder: u8,
    /// Down/up cycles on the profile's flap link (0..=4).
    pub flaps: u8,
    /// Crash the primary m-router mid-run. Not searched (categorical).
    pub crash: bool,
    /// Leave/rejoin churn cycles over the member set (0..=4).
    pub churn: u8,
    /// Index into [`RETRY_BASES`].
    pub retry: u8,
    /// Index into [`REPAIR_INTERVALS`].
    pub repair: u8,
    /// Index into [`TOLERANCES`].
    pub tolerance: u8,
    /// Correlated partition family: 0 = none, else a seeded graph cut
    /// at t=25k healing `15k × partition` later (0..=3).
    pub partition: u8,
    /// Correlated regional-outage family: 0 = none, else `outage`
    /// links around a seeded epicentre down for `10k × outage` (0..=3).
    pub outage: u8,
}

/// One searchable axis of [`StressPoint`]: an accessor pair plus the
/// largest legal index.
pub struct Axis {
    /// Field name (used in reports and descent labels).
    pub name: &'static str,
    /// Largest legal index on the axis.
    pub max: u8,
    get: fn(&StressPoint) -> u8,
    set: fn(&mut StressPoint, u8),
}

impl Axis {
    /// Read this axis of `p`.
    pub fn get(&self, p: &StressPoint) -> u8 {
        (self.get)(p)
    }

    /// `p` with this axis set to `v`.
    pub fn with(&self, p: &StressPoint, v: u8) -> StressPoint {
        let mut q = *p;
        (self.set)(&mut q, v);
        q
    }
}

/// The searched axes, in descent order. `topo`, `seed` and `crash` are
/// categorical, not hostility scales, so the descent never moves them.
pub const AXES: &[Axis] = &[
    Axis {
        name: "loss",
        max: 15,
        get: |p| p.loss,
        set: |p, v| p.loss = v,
    },
    Axis {
        name: "dup",
        max: 5,
        get: |p| p.dup,
        set: |p, v| p.dup = v,
    },
    Axis {
        name: "reorder",
        max: 4,
        get: |p| p.reorder,
        set: |p, v| p.reorder = v,
    },
    Axis {
        name: "flaps",
        max: 4,
        get: |p| p.flaps,
        set: |p, v| p.flaps = v,
    },
    Axis {
        name: "churn",
        max: 4,
        get: |p| p.churn,
        set: |p, v| p.churn = v,
    },
    Axis {
        name: "retry",
        max: 4,
        get: |p| p.retry,
        set: |p, v| p.retry = v,
    },
    Axis {
        name: "repair",
        max: 4,
        get: |p| p.repair,
        set: |p, v| p.repair = v,
    },
    Axis {
        name: "tolerance",
        max: 5,
        get: |p| p.tolerance,
        set: |p, v| p.tolerance = v,
    },
    Axis {
        name: "partition",
        max: 3,
        get: |p| p.partition,
        set: |p, v| p.partition = v,
    },
    Axis {
        name: "outage",
        max: 3,
        get: |p| p.outage,
        set: |p, v| p.outage = v,
    },
];

/// Human name of a topology index.
pub fn topo_name(topo: u8) -> &'static str {
    if topo == FIG5 {
        "fig5"
    } else {
        "arpanet"
    }
}

/// Draw one random point (the warm-up sweep's sampler).
pub fn sample(rng: &mut impl Rng, topologies: &[u8]) -> StressPoint {
    let topo = topologies[rng.gen_range(0..topologies.len() as u64) as usize];
    StressPoint {
        topo,
        seed: rng.gen_range(0..16u64),
        loss: rng.gen_range(0..16u64) as u8,
        dup: rng.gen_range(0..6u64) as u8,
        reorder: rng.gen_range(0..5u64) as u8,
        flaps: rng.gen_range(0..5u64) as u8,
        crash: rng.gen_range(0..4u64) == 0,
        churn: rng.gen_range(0..5u64) as u8,
        retry: rng.gen_range(0..5u64) as u8,
        repair: rng.gen_range(0..5u64) as u8,
        tolerance: rng.gen_range(0..6u64) as u8,
        partition: rng.gen_range(0..4u64) as u8,
        outage: rng.gen_range(0..4u64) as u8,
    }
}

// ---------------------------------------------------------------------------
// Generator: point → scenario
// ---------------------------------------------------------------------------

/// Per-topology constants the generator builds scenarios around.
struct Profile {
    topology: TopologySpec,
    m_router: u32,
    standby: u32,
    members: &'static [u32],
    source: u32,
    /// Link whose flapping disturbs the tree without partitioning the
    /// graph (fig5: the 0–2 tree link; ARPANET: 9–10 next to the root).
    flap: (u32, u32),
    heartbeat: u64,
    first_send: u64,
    run_until: u64,
}

fn profile(p: &StressPoint) -> Profile {
    if p.topo == FIG5 {
        Profile {
            topology: TopologySpec::Custom {
                nodes: 6,
                links: vec![
                    [0, 1, 3, 6],
                    [0, 2, 4, 5],
                    [0, 3, 2, 6],
                    [1, 2, 3, 2],
                    [1, 4, 9, 3],
                    [2, 3, 4, 1],
                    [2, 5, 7, 2],
                ],
            },
            m_router: 0,
            standby: 2,
            members: &[4, 3, 5],
            source: 1,
            flap: (0, 2),
            heartbeat: 500,
            first_send: 90_000,
            run_until: 180_000,
        }
    } else {
        Profile {
            topology: TopologySpec::Arpanet { seed: p.seed },
            m_router: 10,
            standby: 11,
            members: &[3, 6, 7, 9, 15, 17],
            source: 13,
            flap: (9, 10),
            heartbeat: 1_000,
            first_send: 150_000,
            run_until: 280_000,
        }
    }
}

/// Map a point to its concrete scenario. Pure — the same point always
/// yields the same file, which is what makes every search replayable
/// and every pinned reproducer stable.
///
/// The timeline shape is fixed; the point only scales its hostile
/// parts: members join early, churn cycles leave/rejoin mid-run, the
/// flap link cycles down/up while the tree is in service, an optional
/// crash kills the primary at t=60k (the standby era covers all later
/// sends), and [`SENDS`] tagged payloads go out after the control plane
/// had time to converge.
pub fn synthesize(p: &StressPoint) -> ScenarioFile {
    let prof = profile(p);
    let mut events = Vec::new();
    for (k, &m) in prof.members.iter().enumerate() {
        events.push(EventSpec {
            time: k as u64 * 1_000,
            node: m,
            op: "join".into(),
            group: 1,
            tag: None,
        });
    }
    for k in 0..u64::from(p.churn) {
        let m = prof.members[k as usize % prof.members.len()];
        let leave = 30_000 + k * 7_000;
        events.push(EventSpec {
            time: leave,
            node: m,
            op: "leave".into(),
            group: 1,
            tag: None,
        });
        events.push(EventSpec {
            time: leave + 3_500,
            node: m,
            op: "join".into(),
            group: 1,
            tag: None,
        });
    }
    for k in 0..SENDS {
        events.push(EventSpec {
            time: prof.first_send + k * 4_000,
            node: prof.source,
            op: "send".into(),
            group: 1,
            tag: Some(k + 1),
        });
    }

    let mut faults = Vec::new();
    for k in 0..u64::from(p.flaps) {
        let down = 20_000 + k * 8_000;
        let (a, b) = prof.flap;
        faults.push(FaultSpec {
            time: down,
            fault: FaultKind::LinkDown { a, b },
        });
        faults.push(FaultSpec {
            time: down + 4_000,
            fault: FaultKind::LinkUp { a, b },
        });
    }
    // Correlated fault families: a seeded graph cut healing mid-run
    // and a regional outage around a seeded epicentre, both well before
    // the sends so the repair scan's reconciliation (when armed) has a
    // chance — with the scan off, these are what strand members.
    if p.partition > 0 {
        faults.push(FaultSpec {
            time: 25_000,
            fault: FaultKind::Partition {
                seed: p.seed,
                heal_at: 25_000 + 15_000 * u64::from(p.partition),
            },
        });
    }
    if p.outage > 0 {
        faults.push(FaultSpec {
            time: 45_000,
            fault: FaultKind::RegionalOutage {
                seed: p.seed,
                links: u32::from(p.outage),
                restore_at: 45_000 + 10_000 * u64::from(p.outage),
            },
        });
    }
    if p.crash {
        faults.push(FaultSpec {
            time: 60_000,
            fault: FaultKind::RouterCrash {
                node: prof.m_router,
            },
        });
    }

    let retry = RETRY_BASES[p.retry as usize];
    let chan = ChannelSpec {
        drop: f64::from(p.loss) * 0.02,
        duplicate: f64::from(p.dup) * 0.02,
        corrupt: 0.0,
        reorder_window: u64::from(p.reorder) * 2,
    };
    ScenarioFile {
        topology: prof.topology,
        m_router: MRouterSpec::Node(prof.m_router),
        events,
        membership_schedule: Vec::new(),
        capacity: None,
        faults,
        robustness: Some(RobustnessSpec {
            repair_interval: Some(REPAIR_INTERVALS[p.repair as usize]),
            join_retry: Some(retry),
            leave_retry: Some(retry),
            heartbeat_interval: Some(prof.heartbeat),
            standby: Some(prof.standby),
            takeover_rebuild_delay: Some(500),
            tree_retry: Some(retry),
            heartbeat_loss_tolerance: Some(TOLERANCES[p.tolerance as usize]),
        }),
        reliability: None,
        channel: if chan.is_noop() {
            None
        } else {
            Some(ChannelPlan {
                seed: p.seed,
                default: Some(chan),
                links: Vec::new(),
            })
        },
        telemetry: None,
        run_until: Some(prof.run_until),
    }
}

/// [`synthesize`], serialized the way every runner entry point wants it.
pub fn synthesize_json(p: &StressPoint) -> String {
    serde_json::to_string(&synthesize(p)).expect("scenario serializes")
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// The oracle's verdict on one scenario run.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Hard invariant violations (sorted): protocol bugs no matter the
    /// scenario. `duplicate_delivery`, `unaccounted_loss`,
    /// `split_brain` (clean runs only), `clean_run_imperfect`.
    pub hard: Vec<String>,
    /// Boundary predicates (sorted): acceptable only past the operating
    /// envelope. `delivery_incomplete`, `dual_mrouter_at_end`,
    /// `member_unreached`, `unexpected_takeover`, `missed_takeover`,
    /// `repair_latency_exceeded`.
    pub boundary: Vec<String>,
    /// The runner's metric summary.
    pub result: ScenarioResult,
    /// Members owed at least one delivery by the timeline.
    pub members_expected: usize,
    /// Of those, members that heard at least one payload.
    pub members_reached: usize,
    /// Distinct `(group, tag, node)` delivered more than once.
    pub duplicate_deliveries: usize,
    /// Missing deliveries with no recorded drop/fault to explain them.
    pub unaccounted: usize,
}

impl Evaluation {
    /// True when any predicate fired.
    pub fn failed(&self) -> bool {
        !self.hard.is_empty() || !self.boundary.is_empty()
    }

    /// The failure signature: hard names then boundary names. Two runs
    /// fail "the same way" iff their signatures are equal.
    pub fn signature(&self) -> Vec<String> {
        self.hard.iter().chain(&self.boundary).cloned().collect()
    }
}

/// Run one scenario and apply the invariant suite. The scenario runs
/// with its trace captured in memory, the trace is audited (PR 3), and
/// the predicates combine audit, summary and the timeline's own
/// delivery expectations.
pub fn evaluate(json: &str) -> Result<Evaluation, String> {
    let spec: ScenarioFile = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let (result, trace_text) = run_scenario_captured(json)?;
    let trace = Trace::parse(&trace_text).map_err(|e| format!("trace: {e}"))?;
    let audit = trace.audit();

    // Per-member expectations: which tags was each member owed?
    let (_sent, expected) = expected_deliveries(&spec);
    let mut expected_tags: BTreeMap<u32, BTreeSet<u64>> = BTreeMap::new();
    for &(_, tag, node) in &expected {
        expected_tags.entry(node.0).or_default().insert(tag);
    }
    let reached: BTreeSet<u32> = trace
        .events()
        .iter()
        .filter(|ev| matches!(ev.kind, EventKind::DeliverLocal { .. }))
        .map(|ev| ev.node)
        .filter(|n| expected_tags.contains_key(n))
        .collect();

    let channel_active = spec.channel.as_ref().is_some_and(|c| !c.is_noop());
    let crashed_primary = spec
        .faults
        .iter()
        .any(|f| matches!(f.fault, FaultKind::RouterCrash { node } if node == result.m_router));
    let rob = spec.robustness.clone().unwrap_or_default();
    let standby_armed = rob.standby.is_some() && rob.heartbeat_interval.is_some_and(|h| h > 0);
    let repair_interval = rob.repair_interval.unwrap_or(0);
    // A partition whose cut separates the primary from its standby
    // starves the watchdog legitimately: a takeover there is the
    // protocol working, not a false promotion.
    let partition_splits_root_pair = rob.standby.is_some_and(|standby| {
        let topo = spec.topology.build();
        spec.faults.iter().any(|f| {
            if let FaultKind::Partition { seed, .. } = f.fault {
                if let Ok(cut) = partition_cut(&topo, seed) {
                    let a_has = |n: u32| cut.side_a.iter().any(|v| v.0 == n);
                    return a_has(result.m_router) != a_has(standby);
                }
            }
            false
        })
    });
    // Correlated families hold their damage for a declared interval; a
    // repair cannot complete while the partition (or outage) persists,
    // so the latency bound starts counting from the heal, not the cut.
    let max_outage: u64 = spec
        .faults
        .iter()
        .map(|f| match f.fault {
            FaultKind::Partition { heal_at, .. } => heal_at.saturating_sub(f.time),
            FaultKind::RegionalOutage { restore_at, .. } => restore_at.saturating_sub(f.time),
            FaultKind::FlapStorm { cycles, period, .. } => period.saturating_mul(u64::from(cycles)),
            _ => 0,
        })
        .max()
        .unwrap_or(0);

    let clean_run = !channel_active && spec.faults.is_empty();
    let mut hard = Vec::new();
    if !audit.duplicates.is_empty() {
        hard.push("duplicate_delivery".to_string());
    }
    if !audit.unaccounted.is_empty() {
        hard.push("unaccounted_loss".to_string());
    }
    // Two live claimants on a *clean* run is a real split brain: with
    // nothing dropping packets, the step-down announcement cannot have
    // been lost, so the dual mastership is permanent. Under an active
    // channel the same end state is usually a run sampled mid-heal —
    // the survivor pair ping-pongs the role while loss eats heartbeats
    // and NewMRouter announcements, and every primary heartbeat retries
    // the heal — so there it is a boundary observation instead
    // (`dual_mrouter_at_end` below).
    if result.m_routers_at_end.len() > 1 && clean_run {
        hard.push("split_brain".to_string());
    }
    if clean_run && result.expected_deliveries > 0 && result.delivery_ratio < 1.0 {
        hard.push("clean_run_imperfect".to_string());
    }

    let mut boundary = Vec::new();
    if result.expected_deliveries > 0 && result.delivery_ratio < 1.0 {
        boundary.push("delivery_incomplete".to_string());
    }
    if result.m_routers_at_end.len() > 1 {
        boundary.push("dual_mrouter_at_end".to_string());
    }
    // A member owed ≥ 2 payloads that heard *none* of them: the tree
    // never converged for it. (One expected payload is no proxy — a
    // single datagram can die on a lossy link without any tree bug.)
    if expected_tags
        .iter()
        .any(|(n, tags)| tags.len() >= 2 && !reached.contains(n))
    {
        boundary.push("member_unreached".to_string());
    }
    if result.takeovers > 0 && !crashed_primary && !partition_splits_root_pair {
        boundary.push("unexpected_takeover".to_string());
    }
    if crashed_primary && standby_armed && result.takeovers == 0 {
        boundary.push("missed_takeover".to_string());
    }
    if result.repairs > 0
        && repair_interval > 0
        && result.max_repair_latency > max_outage + 4 * repair_interval
    {
        boundary.push("repair_latency_exceeded".to_string());
    }
    hard.sort();
    boundary.sort();

    Ok(Evaluation {
        hard,
        boundary,
        members_expected: expected_tags.len(),
        members_reached: reached.len(),
        duplicate_deliveries: audit.duplicates.len(),
        unaccounted: audit.unaccounted.len(),
        result,
    })
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

/// Search parameters.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Master seed: drives the warm-up sampler (and nothing else — the
    /// descents are deterministic given the warm-up outcomes).
    pub seed: u64,
    /// Random points in the warm-up sweep.
    pub warmup: usize,
    /// Full coordinate-descent sweeps over the axes (2 is usually a
    /// fixpoint; descents stop early when a sweep improves nothing).
    pub passes: usize,
    /// Most failure signatures to refine into boundary points.
    pub max_boundaries: usize,
    /// Topologies sampled ([`FIG5`] / [`ARPANET`]).
    pub topologies: Vec<u8>,
}

impl SearchConfig {
    /// The full search the `stress` bin runs by default.
    pub fn full(seed: u64) -> Self {
        SearchConfig {
            seed,
            warmup: 48,
            passes: 2,
            max_boundaries: 4,
            topologies: vec![FIG5, ARPANET],
        }
    }

    /// The time-boxed smoke search (`just stress-smoke`, CI).
    pub fn smoke(seed: u64) -> Self {
        SearchConfig {
            seed,
            warmup: 16,
            passes: 1,
            max_boundaries: 2,
            topologies: vec![FIG5],
        }
    }
}

/// One evaluated point, as persisted in the report.
#[derive(Clone, Debug, Serialize)]
pub struct CellRecord {
    /// The point evaluated.
    pub point: StressPoint,
    /// Hard violations observed (sorted).
    pub hard: Vec<String>,
    /// Boundary predicates observed (sorted).
    pub boundary: Vec<String>,
    /// Key metrics of the run.
    pub delivery_ratio: f64,
    pub expected_deliveries: u64,
    pub members_reached: usize,
    pub members_expected: usize,
    pub takeovers: u64,
    pub repairs: u64,
    pub max_repair_latency: u64,
    pub retransmissions: u64,
    pub channel_dropped: u64,
}

fn cell_record(point: StressPoint, ev: &Evaluation) -> CellRecord {
    CellRecord {
        point,
        hard: ev.hard.clone(),
        boundary: ev.boundary.clone(),
        delivery_ratio: ev.result.delivery_ratio,
        expected_deliveries: ev.result.expected_deliveries,
        members_reached: ev.members_reached,
        members_expected: ev.members_expected,
        takeovers: ev.result.takeovers,
        repairs: ev.result.repairs,
        max_repair_latency: ev.result.max_repair_latency,
        retransmissions: ev.result.retransmissions,
        channel_dropped: ev.result.channel_dropped,
    }
}

/// One refined, minimized boundary.
#[derive(Clone, Debug, Serialize)]
pub struct BoundaryRecord {
    /// The warm-up failure signature that seeded the descent.
    pub origin_signature: Vec<String>,
    /// The warm-up point the descent started from.
    pub origin: StressPoint,
    /// The boundary point the descent converged to, with its own
    /// (possibly sharper) signature and metrics.
    pub boundary: CellRecord,
    /// Events surviving delta-debugging (of the boundary scenario's).
    pub minimized_events: usize,
    /// Faults surviving delta-debugging.
    pub minimized_faults: usize,
    /// Corpus file stem this boundary pins to.
    pub corpus_name: String,
    /// The minimized reproducer itself.
    pub minimized: ScenarioFile,
}

/// The full search result, persisted to `bench_results/stress.json`.
/// Contains no timing, host or worker-count information: the report for
/// a given config is byte-identical at every `--jobs` value.
#[derive(Clone, Debug, Serialize)]
pub struct StressReport {
    /// Master seed of the run.
    pub seed: u64,
    /// Warm-up points sampled.
    pub warmup: usize,
    /// Descent passes configured.
    pub passes: u64,
    /// Total scenario evaluations spent (warm-up + descents + ddmin).
    pub evaluations: u64,
    /// Cells with hard invariant violations — must be empty; the bin
    /// exits nonzero otherwise.
    pub hard_failures: Vec<CellRecord>,
    /// Every warm-up cell.
    pub warmup_cells: Vec<CellRecord>,
    /// The refined boundary map.
    pub boundaries: Vec<BoundaryRecord>,
}

/// Batches every oracle call of a search through one [`SweepRunner`]
/// and counts them.
struct Driver<'a> {
    runner: &'a SweepRunner,
    evaluations: u64,
}

impl Driver<'_> {
    /// Evaluate generated points; a generator that emits an unrunnable
    /// scenario is a bug worth a loud panic.
    fn eval_points(&mut self, points: &[StressPoint]) -> Vec<Evaluation> {
        let jsons: Vec<String> = points.iter().map(synthesize_json).collect();
        self.evaluations += jsons.len() as u64;
        self.runner
            .run(&jsons, |_, j| evaluate(j))
            .into_iter()
            .zip(points)
            .map(|(r, p)| r.unwrap_or_else(|e| panic!("generated scenario {p:?} failed: {e}")))
            .collect()
    }
}

/// One in-flight coordinate descent: lock-step binary search for the
/// minimal failing index on each axis in turn.
struct Descent {
    /// Signature the descent chases: a probe "fails" when its own
    /// signature shares at least one name with this one.
    sig: Vec<String>,
    point: StressPoint,
    axis: usize,
    axis_start: u8,
    lo: u8,
    hi: u8,
    pass: usize,
    improved: bool,
    done: bool,
}

impl Descent {
    fn new(sig: Vec<String>, point: StressPoint) -> Descent {
        let mut d = Descent {
            sig,
            point,
            axis: 0,
            axis_start: AXES[0].get(&point),
            lo: 0,
            hi: AXES[0].get(&point),
            pass: 0,
            improved: false,
            done: false,
        };
        d.advance(usize::MAX); // settle zero axes; passes can't end here
        d
    }

    /// The probe this descent wants next (None when finished).
    fn probe(&self) -> Option<StressPoint> {
        if self.done {
            return None;
        }
        Some(AXES[self.axis].with(&self.point, (self.lo + self.hi) / 2))
    }

    /// Record the probe's outcome and move on.
    fn observe(&mut self, probe_failed: bool, passes: usize) {
        let mid = (self.lo + self.hi) / 2;
        if probe_failed {
            self.hi = mid;
        } else {
            self.lo = mid + 1;
        }
        self.advance(passes);
    }

    /// Settle finished axes and find the next one needing a probe.
    fn advance(&mut self, passes: usize) {
        while !self.done && self.lo >= self.hi {
            // Axis settled: `hi` is the smallest index still failing.
            if self.hi < self.axis_start {
                self.point = AXES[self.axis].with(&self.point, self.hi);
                self.improved = true;
            }
            self.axis += 1;
            while self.axis < AXES.len() && AXES[self.axis].get(&self.point) == 0 {
                self.axis += 1;
            }
            if self.axis == AXES.len() {
                self.pass += 1;
                if self.pass >= passes || !self.improved {
                    self.done = true;
                    return;
                }
                self.improved = false;
                self.axis = 0;
                while self.axis < AXES.len() && AXES[self.axis].get(&self.point) == 0 {
                    self.axis += 1;
                }
                if self.axis == AXES.len() {
                    self.done = true;
                    return;
                }
            }
            self.axis_start = AXES[self.axis].get(&self.point);
            self.lo = 0;
            self.hi = self.axis_start;
        }
    }
}

fn intersects(a: &[String], b: &[String]) -> bool {
    a.iter().any(|x| b.contains(x))
}

/// Run the full STRESS search. Deterministic: the same config yields a
/// byte-identical [`StressReport`] at every `jobs` value, because every
/// evaluation batch goes through [`SweepRunner`] (order-stable) and all
/// selection logic is first-in-order.
pub fn search(cfg: &SearchConfig, jobs: usize) -> StressReport {
    assert!(!cfg.topologies.is_empty(), "no topologies to search");
    let runner = SweepRunner::new(jobs);
    let mut drv = Driver {
        runner: &runner,
        evaluations: 0,
    };

    // Warm-up: a seeded random sweep across the whole space.
    let mut rng = rng_for("stress/warmup", cfg.seed);
    let points: Vec<StressPoint> = (0..cfg.warmup)
        .map(|_| sample(&mut rng, &cfg.topologies))
        .collect();
    let evals = drv.eval_points(&points);
    let warmup_cells: Vec<CellRecord> = points
        .iter()
        .zip(&evals)
        .map(|(p, e)| cell_record(*p, e))
        .collect();
    let hard_failures: Vec<CellRecord> = warmup_cells
        .iter()
        .filter(|c| !c.hard.is_empty())
        .cloned()
        .collect();

    // Pick descent seeds: the first warm-up failure of each distinct
    // signature, hard failures first (a real protocol bug outranks an
    // envelope edge for the limited descent budget).
    let mut order: Vec<usize> = (0..evals.len()).collect();
    order.sort_by_key(|&i| (evals[i].hard.is_empty(), i));
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut descents: Vec<Descent> = Vec::new();
    for i in order {
        if descents.len() >= cfg.max_boundaries {
            break;
        }
        if evals[i].failed() && seen.insert(evals[i].signature()) {
            descents.push(Descent::new(evals[i].signature(), points[i]));
        }
    }
    let origins: Vec<(Vec<String>, StressPoint)> =
        descents.iter().map(|d| (d.sig.clone(), d.point)).collect();

    // Lock-step descent rounds: every active descent contributes one
    // probe per round; the batch runs on the shared runner.
    loop {
        let wanting: Vec<usize> = (0..descents.len()).filter(|&i| !descents[i].done).collect();
        if wanting.is_empty() {
            break;
        }
        let probes: Vec<StressPoint> = wanting
            .iter()
            .map(|&i| descents[i].probe().expect("active descent has a probe"))
            .collect();
        let outcomes = drv.eval_points(&probes);
        for (&i, ev) in wanting.iter().zip(&outcomes) {
            let failed = intersects(&ev.signature(), &descents[i].sig);
            descents[i].observe(failed, cfg.passes);
        }
    }

    // Evaluate each boundary point for its final signature + metrics,
    // then minimize. Descents that converged to the same corpus name
    // (same topology, same final signature) are collapsed to the first.
    let finals: Vec<StressPoint> = descents.iter().map(|d| d.point).collect();
    let final_evals = drv.eval_points(&finals);
    let mut named: BTreeSet<String> = BTreeSet::new();
    let mut boundaries = Vec::new();
    for (((sig, origin), point), ev) in origins.into_iter().zip(finals).zip(&final_evals) {
        let corpus_name = format!(
            "stress-{}-{}",
            topo_name(point.topo),
            ev.signature().join("+")
        );
        if !named.insert(corpus_name.clone()) {
            continue;
        }
        let spec = synthesize(&point);
        let (minimized, spent) = minimize(&spec, &ev.hard, &ev.boundary, &runner);
        drv.evaluations += spent;
        boundaries.push(BoundaryRecord {
            origin_signature: sig,
            origin,
            boundary: cell_record(point, ev),
            minimized_events: minimized.events.len(),
            minimized_faults: minimized.faults.len(),
            corpus_name,
            minimized,
        });
    }

    StressReport {
        seed: cfg.seed,
        warmup: cfg.warmup,
        passes: cfg.passes as u64,
        evaluations: drv.evaluations,
        hard_failures,
        warmup_cells,
        boundaries,
    }
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

/// Delta-debug (`ddmin`) the scenario's event + fault schedule: find a
/// small item subset whose run still fails with *exactly* the given
/// `(hard, boundary)` signature. Returns the reduced scenario and the
/// number of oracle evaluations spent. Deterministic: candidate order
/// is fixed and the first (lowest-index) surviving complement wins each
/// round; candidates within a round evaluate as one parallel batch.
pub fn minimize(
    spec: &ScenarioFile,
    hard: &[String],
    boundary: &[String],
    runner: &SweepRunner,
) -> (ScenarioFile, u64) {
    let n_events = spec.events.len();
    let total = n_events + spec.faults.len();
    let build = |keep: &[usize]| -> ScenarioFile {
        let mut s = spec.clone();
        s.events = keep
            .iter()
            .filter(|&&i| i < n_events)
            .map(|&i| spec.events[i].clone())
            .collect();
        s.faults = keep
            .iter()
            .filter(|&&i| i >= n_events)
            .map(|&i| spec.faults[i - n_events].clone())
            .collect();
        s
    };
    let matches = |ev: &Evaluation| -> bool { ev.hard == hard && ev.boundary == boundary };

    let mut evals = 0u64;
    let mut keep: Vec<usize> = (0..total).collect();
    let mut granularity = 2usize;
    while keep.len() >= 2 {
        granularity = granularity.min(keep.len());
        // Complements: drop one of `granularity` near-equal chunks.
        let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(granularity);
        let base = keep.len() / granularity;
        let extra = keep.len() % granularity;
        let mut start = 0usize;
        for k in 0..granularity {
            let size = base + usize::from(k < extra);
            let mut c = Vec::with_capacity(keep.len() - size);
            c.extend_from_slice(&keep[..start]);
            c.extend_from_slice(&keep[start + size..]);
            candidates.push(c);
            start += size;
        }
        let jsons: Vec<String> = candidates
            .iter()
            .map(|c| serde_json::to_string(&build(c)).expect("scenario serializes"))
            .collect();
        evals += jsons.len() as u64;
        let outcomes = runner.run(&jsons, |_, j| evaluate(j));
        let hit = outcomes.iter().position(|r| r.as_ref().is_ok_and(&matches));
        match hit {
            Some(i) => {
                keep = std::mem::take(&mut candidates[i]);
                granularity = granularity.saturating_sub(1).max(2);
            }
            None if granularity < keep.len() => {
                granularity = (granularity * 2).min(keep.len());
            }
            None => break,
        }
    }
    (build(&keep), evals)
}

// ---------------------------------------------------------------------------
// Regression corpus
// ---------------------------------------------------------------------------

/// Optional metric assertions a corpus entry may pin alongside its
/// signature. Absent fields check nothing; present ones are exact or
/// one-sided bounds on the replayed run. Runs are deterministic, so
/// even exact pins are stable.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Checks {
    #[serde(default)]
    pub delivery_ratio_at_least: Option<f64>,
    #[serde(default)]
    pub delivery_ratio_at_most: Option<f64>,
    #[serde(default)]
    pub repairs_at_least: Option<u64>,
    #[serde(default)]
    pub repairs_at_most: Option<u64>,
    #[serde(default)]
    pub max_repair_latency_at_most: Option<u64>,
    #[serde(default)]
    pub takeovers: Option<u64>,
    #[serde(default)]
    pub m_router_at_end: Option<u32>,
    #[serde(default)]
    pub retransmissions_at_least: Option<u64>,
    #[serde(default)]
    pub channel_dropped_at_least: Option<u64>,
    #[serde(default)]
    pub members_reached_at_least: Option<usize>,
    #[serde(default)]
    pub nacks_sent_at_least: Option<u64>,
    #[serde(default)]
    pub recoveries_at_least: Option<u64>,
    #[serde(default)]
    pub partition_degraded_ticks_at_least: Option<u64>,
    #[serde(default)]
    pub reconciliations_at_least: Option<u64>,
}

/// What a corpus entry pins about its scenario's replay.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Expectation {
    /// Exact hard-violation signature (normally empty — a pinned hard
    /// failure documents a known-open bug).
    #[serde(default)]
    pub hard: Vec<String>,
    /// Exact boundary signature.
    #[serde(default)]
    pub boundary: Vec<String>,
    /// Optional metric bounds.
    #[serde(default)]
    pub checks: Option<Checks>,
}

/// One pinned regression scenario: a scenario file plus the verdict its
/// replay must reproduce exactly, forever.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// File stem under `tests/scenarios/corpus/`.
    pub name: String,
    /// Where the entry came from (hand-ported test, search run, …).
    pub origin: String,
    /// The pinned verdict.
    pub expect: Expectation,
    /// The scenario itself (full `scenario_file` schema).
    pub scenario: ScenarioFile,
}

mod corpus_schema {
    pub const TOP: &[&str] = &["name", "origin", "expect", "scenario"];
    pub const EXPECT: &[&str] = &["hard", "boundary", "checks"];
    pub const CHECKS: &[&str] = &[
        "delivery_ratio_at_least",
        "delivery_ratio_at_most",
        "repairs_at_least",
        "repairs_at_most",
        "max_repair_latency_at_most",
        "takeovers",
        "m_router_at_end",
        "retransmissions_at_least",
        "channel_dropped_at_least",
        "members_reached_at_least",
        "nacks_sent_at_least",
        "recoveries_at_least",
        "partition_degraded_ticks_at_least",
        "reconciliations_at_least",
    ];
}

fn check_keys(value: &serde_json::Value, allowed: &[&str], section: &str) -> Result<(), String> {
    if let Some(fields) = value.as_object() {
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown key {key:?} in {section} (expected one of: {})",
                    allowed.join(", ")
                ));
            }
        }
    }
    Ok(())
}

impl CorpusEntry {
    /// Parse an entry with the same strictness the scenario schema
    /// gets: unknown keys anywhere — wrapper, expectation, checks, or
    /// the embedded scenario — are rejected by name.
    pub fn parse(json: &str) -> Result<CorpusEntry, String> {
        let tree: serde_json::Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
        check_keys(&tree, corpus_schema::TOP, "corpus entry")?;
        if let Some(fields) = tree.as_object() {
            for (key, value) in fields {
                match key.as_str() {
                    "expect" => {
                        check_keys(value, corpus_schema::EXPECT, "expect")?;
                        if let Some(obj) = value.as_object() {
                            if let Some((_, checks)) = obj.iter().find(|(k, _)| k == "checks") {
                                check_keys(checks, corpus_schema::CHECKS, "expect.checks")?;
                            }
                        }
                    }
                    "scenario" => {
                        let body = serde_json::to_string(value).map_err(|e| e.to_string())?;
                        crate::scenario_file::check_unknown_keys(&body)?;
                    }
                    _ => {}
                }
            }
        }
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Replay the scenario and hold it to the pinned verdict. `Err`
    /// lists every mismatch at once.
    pub fn replay(&self) -> Result<Evaluation, String> {
        let json = serde_json::to_string(&self.scenario).map_err(|e| e.to_string())?;
        let ev = evaluate(&json).map_err(|e| format!("corpus {:?}: {e}", self.name))?;
        let mut bad = Vec::new();
        if ev.hard != self.expect.hard {
            bad.push(format!(
                "hard violations {:?} (pinned {:?})",
                ev.hard, self.expect.hard
            ));
        }
        if ev.boundary != self.expect.boundary {
            bad.push(format!(
                "boundary predicates {:?} (pinned {:?})",
                ev.boundary, self.expect.boundary
            ));
        }
        if let Some(c) = &self.expect.checks {
            let r = &ev.result;
            let mut check = |name: &str, ok: bool, got: String| {
                if !ok {
                    bad.push(format!("{name}: got {got}"));
                }
            };
            if let Some(v) = c.delivery_ratio_at_least {
                check(
                    "delivery_ratio_at_least",
                    r.delivery_ratio >= v,
                    r.delivery_ratio.to_string(),
                );
            }
            if let Some(v) = c.delivery_ratio_at_most {
                check(
                    "delivery_ratio_at_most",
                    r.delivery_ratio <= v,
                    r.delivery_ratio.to_string(),
                );
            }
            if let Some(v) = c.repairs_at_least {
                check("repairs_at_least", r.repairs >= v, r.repairs.to_string());
            }
            if let Some(v) = c.repairs_at_most {
                check("repairs_at_most", r.repairs <= v, r.repairs.to_string());
            }
            if let Some(v) = c.max_repair_latency_at_most {
                check(
                    "max_repair_latency_at_most",
                    r.max_repair_latency <= v,
                    r.max_repair_latency.to_string(),
                );
            }
            if let Some(v) = c.takeovers {
                check("takeovers", r.takeovers == v, r.takeovers.to_string());
            }
            if let Some(v) = c.m_router_at_end {
                check(
                    "m_router_at_end",
                    r.m_routers_at_end == vec![v],
                    format!("{:?}", r.m_routers_at_end),
                );
            }
            if let Some(v) = c.retransmissions_at_least {
                check(
                    "retransmissions_at_least",
                    r.retransmissions >= v,
                    r.retransmissions.to_string(),
                );
            }
            if let Some(v) = c.channel_dropped_at_least {
                check(
                    "channel_dropped_at_least",
                    r.channel_dropped >= v,
                    r.channel_dropped.to_string(),
                );
            }
            if let Some(v) = c.members_reached_at_least {
                check(
                    "members_reached_at_least",
                    ev.members_reached >= v,
                    ev.members_reached.to_string(),
                );
            }
            if let Some(v) = c.nacks_sent_at_least {
                check(
                    "nacks_sent_at_least",
                    r.nacks_sent >= v,
                    r.nacks_sent.to_string(),
                );
            }
            if let Some(v) = c.recoveries_at_least {
                check(
                    "recoveries_at_least",
                    r.recoveries >= v,
                    r.recoveries.to_string(),
                );
            }
            if let Some(v) = c.partition_degraded_ticks_at_least {
                check(
                    "partition_degraded_ticks_at_least",
                    r.partition_degraded_ticks >= v,
                    r.partition_degraded_ticks.to_string(),
                );
            }
            if let Some(v) = c.reconciliations_at_least {
                check(
                    "reconciliations_at_least",
                    r.reconciliations >= v,
                    r.reconciliations.to_string(),
                );
            }
        }
        if bad.is_empty() {
            Ok(ev)
        } else {
            Err(format!("corpus {:?}: {}", self.name, bad.join("; ")))
        }
    }
}

/// Build the corpus entry a boundary record pins.
pub fn corpus_entry(rec: &BoundaryRecord, search_seed: u64) -> CorpusEntry {
    CorpusEntry {
        name: rec.corpus_name.clone(),
        origin: format!(
            "stress search seed={search_seed}: {} boundary on {}, minimized from {} events + {} faults",
            rec.boundary.hard.iter().chain(&rec.boundary.boundary).cloned().collect::<Vec<_>>().join("+"),
            topo_name(rec.boundary.point.topo),
            synthesize(&rec.boundary.point).events.len(),
            synthesize(&rec.boundary.point).faults.len(),
        ),
        expect: Expectation {
            hard: rec.boundary.hard.clone(),
            boundary: rec.boundary.boundary.clone(),
            checks: None,
        },
        scenario: rec.minimized.clone(),
    }
}

/// Write `entries` under `dir` as `<name>.json`. Existing files are
/// left alone unless byte-identical is impossible and `force` is set —
/// a pinned reproducer must never drift silently. Returns one
/// `(file name, outcome)` line per entry.
pub fn pin_corpus(
    dir: &Path,
    entries: &[CorpusEntry],
    force: bool,
) -> Result<Vec<(String, &'static str)>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir:?}: {e}"))?;
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let file = format!("{}.json", e.name);
        let path = dir.join(&file);
        let mut body = serde_json::to_string_pretty(e).map_err(|x| x.to_string())?;
        body.push('\n');
        let outcome = match std::fs::read_to_string(&path) {
            Ok(cur) if cur == body => "unchanged",
            Ok(_) if !force => "exists with different content (kept; --force-pin overwrites)",
            _ => {
                std::fs::write(&path, body).map_err(|x| format!("write {path:?}: {x}"))?;
                "pinned"
            }
        };
        out.push((file, outcome));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario_file::check_unknown_keys;

    /// The most hostile corner the smoke search can reach: maximal
    /// loss, ARQ off, repair scan off, hair-trigger watchdog.
    fn hostile() -> StressPoint {
        StressPoint {
            topo: FIG5,
            seed: 1,
            loss: 15,
            dup: 0,
            reorder: 0,
            flaps: 2,
            crash: false,
            churn: 1,
            retry: 4,
            repair: 4,
            tolerance: 5,
            partition: 3,
            outage: 0,
        }
    }

    fn benign() -> StressPoint {
        StressPoint {
            topo: FIG5,
            seed: 0,
            loss: 0,
            dup: 0,
            reorder: 0,
            flaps: 0,
            crash: false,
            churn: 0,
            retry: 0,
            repair: 1,
            tolerance: 0,
            partition: 0,
            outage: 0,
        }
    }

    #[test]
    fn generated_scenarios_validate_and_round_trip() {
        for p in [hostile(), benign()] {
            let json = synthesize_json(&p);
            check_unknown_keys(&json).expect("generator matches the schema");
            let spec: ScenarioFile = serde_json::from_str(&json).unwrap();
            assert_eq!(
                serde_json::to_string(&spec).unwrap(),
                json,
                "round-trip must be identical"
            );
        }
    }

    #[test]
    fn benign_point_passes_the_oracle() {
        let ev = evaluate(&synthesize_json(&benign())).unwrap();
        assert!(ev.hard.is_empty(), "hard: {:?}", ev.hard);
        assert!(ev.boundary.is_empty(), "boundary: {:?}", ev.boundary);
        assert_eq!(ev.result.delivery_ratio, 1.0);
        assert_eq!(ev.members_reached, ev.members_expected);
    }

    #[test]
    fn hostile_point_fails_and_minimizes_with_the_same_signature() {
        let ev = evaluate(&synthesize_json(&hostile())).unwrap();
        assert!(
            ev.failed(),
            "30% loss with every recovery mechanism off must break something"
        );
        assert!(
            ev.hard.is_empty(),
            "hostility is not a protocol bug: {:?}",
            ev.hard
        );

        let spec = synthesize(&hostile());
        let runner = SweepRunner::new(2);
        let (min, spent) = minimize(&spec, &ev.hard, &ev.boundary, &runner);
        assert!(spent > 0);
        assert!(
            min.events.len() + min.faults.len() <= spec.events.len() + spec.faults.len(),
            "minimizer must never grow the schedule"
        );
        let replay = evaluate(&serde_json::to_string(&min).unwrap()).unwrap();
        assert_eq!(replay.hard, ev.hard, "minimization preserved the signature");
        assert_eq!(replay.boundary, ev.boundary);
    }

    #[test]
    fn smoke_search_is_jobs_invariant_and_finds_a_boundary() {
        let cfg = SearchConfig {
            seed: 1,
            warmup: 8,
            passes: 1,
            max_boundaries: 1,
            topologies: vec![FIG5],
        };
        let serial = search(&cfg, 1);
        let parallel = search(&cfg, 3);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "stress search must be byte-identical across worker counts"
        );
        assert!(
            serial.hard_failures.is_empty(),
            "hard invariant violations: {:?}",
            serial.hard_failures
        );
        assert!(
            !serial.boundaries.is_empty(),
            "an 8-point warm-up over this space always hits the envelope"
        );
        for b in &serial.boundaries {
            // The boundary point is on the envelope: it still fails…
            assert!(
                !b.boundary.hard.is_empty() || !b.boundary.boundary.is_empty(),
                "boundary point must fail"
            );
            // …and the minimized reproducer replays with that signature.
            let entry = corpus_entry(b, cfg.seed);
            entry.replay().expect("minimized reproducer replays");
        }
    }

    #[test]
    fn corpus_entry_round_trips_and_rejects_unknown_keys() {
        let entry = CorpusEntry {
            name: "unit".into(),
            origin: "unit test".into(),
            expect: Expectation {
                hard: vec![],
                boundary: vec![],
                checks: Some(Checks {
                    delivery_ratio_at_least: Some(1.0),
                    ..Checks::default()
                }),
            },
            scenario: synthesize(&benign()),
        };
        let json = serde_json::to_string_pretty(&entry).unwrap();
        let parsed = CorpusEntry::parse(&json).unwrap();
        assert_eq!(parsed.name, "unit");
        parsed.replay().expect("benign scenario meets its pins");

        let typo = json.replace("\"boundary\"", "\"boundry\"");
        let err = CorpusEntry::parse(&typo).unwrap_err();
        assert!(err.contains("boundry") && err.contains("expect"), "{err}");

        let deep = json.replace("\"run_until\"", "\"run_untill\"");
        let err = CorpusEntry::parse(&deep).unwrap_err();
        assert!(err.contains("run_untill"), "{err}");
    }

    #[test]
    fn failed_checks_name_every_mismatch() {
        let entry = CorpusEntry {
            name: "unit-bad".into(),
            origin: "unit test".into(),
            expect: Expectation {
                hard: vec![],
                boundary: vec!["delivery_incomplete".into()],
                checks: Some(Checks {
                    takeovers: Some(7),
                    ..Checks::default()
                }),
            },
            scenario: synthesize(&benign()),
        };
        let err = entry.replay().unwrap_err();
        assert!(err.contains("boundary predicates"), "{err}");
        assert!(err.contains("takeovers"), "{err}");
    }
}
