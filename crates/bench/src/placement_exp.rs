//! §IV-A m-router placement study.
//!
//! "In our simulations, we also change the location of the m-router to
//! see how it affects the tree cost" — this experiment compares the
//! paper's three placement heuristics against random placement, by
//! building DCDM trees for random groups and measuring cost and delay.

use rand::seq::SliceRandom;
use rand::Rng;
use scmp_core::placement::{self, PlacementRule};
use scmp_net::rng::rng_for;
use scmp_net::topology::{waxman, WaxmanConfig};
use scmp_net::{provider_for, NodeId};
use scmp_tree::{Dcdm, DelayBound};
use serde::Serialize;

/// One averaged data point.
#[derive(Clone, Debug, Serialize)]
pub struct PlacementPoint {
    /// "rule1-avg-delay" | "rule2-degree" | "rule3-diameter" | "random".
    pub strategy: String,
    pub group_size: usize,
    pub tree_cost: f64,
    pub tree_delay: f64,
}

/// One `(strategy, group size, seed)` cell: build the seed's topology,
/// place the root, draw the group, grow the DCDM tree. Fully
/// self-contained — the cell re-derives its RNG stream, so sweep
/// workers can run cells in any order.
fn run_one(rule: Option<PlacementRule>, gs: usize, seed: u64) -> (f64, f64) {
    let mut rng = rng_for("placement", seed);
    let topo = waxman(&WaxmanConfig::default(), &mut rng);
    let paths = provider_for(&topo);
    let root = match rule {
        Some(r) => placement::place(r, &topo, &paths),
        None => NodeId(rng.gen_range(0..topo.node_count() as u32)),
    };
    let mut pool: Vec<NodeId> = topo.nodes().filter(|&v| v != root).collect();
    pool.shuffle(&mut rng);
    let members: Vec<NodeId> = pool.into_iter().take(gs).collect();
    let mut dcdm = Dcdm::new(&topo, &paths, root, DelayBound::Dynamic);
    for &m in &members {
        dcdm.join(m);
    }
    let tree = dcdm.into_tree();
    (tree.tree_cost(&topo) as f64, tree.tree_delay(&topo) as f64)
}

/// Run the study: Waxman n=100, group sizes 10..=90, `seeds` seeds,
/// with the default worker pool (`SCMP_JOBS` / core count).
pub fn run(seeds: u64) -> Vec<PlacementPoint> {
    run_jobs(seeds, crate::sweep::resolve_jobs(None))
}

/// Run the study on `jobs` workers; results are independent of `jobs`.
pub fn run_jobs(seeds: u64, jobs: usize) -> Vec<PlacementPoint> {
    let strategies: Vec<(String, Option<PlacementRule>)> = PlacementRule::ALL
        .iter()
        .map(|&r| (r.label().to_string(), Some(r)))
        .chain(std::iter::once(("random".to_string(), None)))
        .collect();
    let mut cells: Vec<(usize, usize, u64)> = Vec::new();
    for gs in (10..=90).step_by(20) {
        for (si, _) in strategies.iter().enumerate() {
            for seed in 0..seeds {
                cells.push((gs, si, seed));
            }
        }
    }
    let samples = crate::sweep::SweepRunner::new(jobs).run(&cells, |_, &(gs, si, seed)| {
        run_one(strategies[si].1, gs, seed)
    });

    let mut out = Vec::new();
    let per_point = seeds.max(1) as usize;
    for (chunk_idx, group) in samples.chunks(per_point).enumerate() {
        let (gs, si, _) = cells[chunk_idx * per_point];
        let costs: Vec<f64> = group.iter().map(|&(c, _)| c).collect();
        let delays: Vec<f64> = group.iter().map(|&(_, d)| d).collect();
        out.push(PlacementPoint {
            strategy: strategies[si].0.clone(),
            group_size: gs,
            tree_cost: crate::report::mean(&costs),
            tree_delay: crate::report::mean(&delays),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule1_beats_random_on_delay() {
        let pts = run(4);
        let avg = |strategy: &str, f: fn(&PlacementPoint) -> f64| {
            let v: Vec<f64> = pts
                .iter()
                .filter(|p| p.strategy == strategy)
                .map(f)
                .collect();
            crate::report::mean(&v)
        };
        let r1 = avg("rule1-avg-delay", |p| p.tree_delay);
        let rnd = avg("random", |p| p.tree_delay);
        assert!(
            r1 <= rnd * 1.05,
            "rule 1 delay {r1} should not exceed random {rnd}"
        );
    }
}
