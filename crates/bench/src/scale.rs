//! Path-layer scaling study: 1k–10k-node domains under the on-demand
//! provider.
//!
//! The paper stops at 50-node Waxman graphs; the ROADMAP's first open
//! item is that the eager `O(n²)` `P_sl`/`P_lc` tables are what dies
//! first beyond that. This bench drives the layers that replaced them —
//! CSR [`Topology`], [`OnDemandPaths`], lazy [`scmp_net::RoutingTables`]
//! — at GT-ITM transit–stub and Waxman sizes the old code could not
//! reach, and *measures* the `O(n²) → O(n·cached)` claim instead of
//! asserting it:
//!
//! * a **curve** over n: resident topology/path/routing bytes, provider
//!   cache statistics, DCDM tree totals under a Zipf-popularity group
//!   workload, plus one SCMP engine run per size (events processed,
//!   delivery check);
//! * one **fig8/fig9-shaped** experiment at 5k nodes: SCMP vs CBT vs
//!   MOSPF overhead and end-to-end delay across group sizes (full runs
//!   only — DVMRP's domain-wide floods are exactly the non-scalable
//!   behaviour this study avoids);
//! * per-cell **timing** (tree-build latency, events/sec, peak RSS),
//!   kept in a separate report section that the serial-vs-parallel
//!   byte-identity guard does not compare — wall-clock is the one thing
//!   a worker pool may legitimately change.
//!
//! `run(smoke, jobs)` fans cells out on the [`SweepRunner`]; everything
//! deterministic folds in fixed cell order, so any `jobs` value yields
//! the same [`ScaleReport::deterministic_json`].

use crate::sweep::SweepRunner;
use rand::Rng;
use scmp_net::rng::rng_for;
use scmp_net::topology::{transit_stub, waxman, WaxmanConfig};
use scmp_net::{NodeId, OnDemandPaths, PathProvider, Topology};
use scmp_protocols::{build_engine, ProtocolKind, ProtocolParams};
use scmp_sim::{AppEvent, EngineRunner, GroupId, SimStats};
use scmp_tree::{Dcdm, DelayBound};
use serde::Serialize;
use std::collections::BTreeSet;
use std::time::Instant;

/// One simulated "second" in engine ticks (matches `netperf`).
const SECOND: u64 = 50_000;
/// Data packets per engine run.
const PACKETS: u64 = 5;
const GROUP: GroupId = GroupId(1);
/// Grid side for generated topologies (the paper's §IV value).
const GRID: i64 = 32_767;
/// The single seed of the study (scaling curves sweep n, not seeds).
const SEED: u64 = 1;

/// Topology family swept by the curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Family {
    /// GT-ITM two-level transit–stub hierarchy.
    TransitStub,
    /// Waxman random graph (the paper's §IV-A model).
    Waxman,
}

impl Family {
    /// Output label.
    pub fn label(self) -> &'static str {
        match self {
            Family::TransitStub => "transit-stub",
            Family::Waxman => "waxman",
        }
    }

    /// Build an instance with roughly `target` nodes (transit–stub
    /// quantises to its `t·(1 + s·k)` grid).
    pub fn build(self, target: usize) -> Topology {
        let mut rng = rng_for("scale-topo", SEED ^ ((target as u64) << 20));
        match self {
            Family::TransitStub => {
                let (t, s, k) = transit_stub_params(target);
                transit_stub(t, s, k, GRID, &mut rng)
            }
            Family::Waxman => {
                // Density parameters scaled down with n so the edge
                // count stays O(n) (the paper's β at n = 10k would give
                // a near-clique).
                let beta = (40.0 / target as f64).min(0.2);
                waxman(
                    &WaxmanConfig {
                        n: target,
                        alpha: 0.25,
                        beta,
                        grid: GRID,
                        min_delay_one: true,
                    },
                    &mut rng,
                )
            }
        }
    }
}

/// Transit–stub shape for a node-count target: 10 transit nodes, 9 stub
/// domains each, stub size chosen so `10·(1 + 9k) ≥ target`.
pub fn transit_stub_params(target: usize) -> (usize, usize, usize) {
    let (t, s) = (10usize, 9usize);
    let k = (target / t).saturating_sub(1).div_ceil(s);
    (t, s, k.max(1))
}

/// Zipf sampler over ranks `0..n` with exponent `s`, via a cumulative
/// table (the vendored `rand` has no Zipf distribution).
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Table for `n` ranks, popularity `∝ 1/(rank+1)^s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Deterministic measurements of one curve point. Everything here must
/// be identical across worker counts and repeated runs.
#[derive(Clone, Debug, Serialize)]
pub struct CurveRow {
    pub family: String,
    /// Actual node count (transit–stub quantises the target).
    pub n: usize,
    pub edges: usize,
    /// CSR topology bytes (offset + edge arrays + edge list + coords).
    pub topo_bytes: usize,
    /// Zipf workload shape.
    pub groups: usize,
    pub joins: usize,
    /// Provider cache counters after the workload.
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub resident_trees: usize,
    /// Resident path-state bytes after the workload (the lazy number).
    pub path_bytes: usize,
    /// What the eager all-pairs tables would hold for this n (2n trees)
    /// — the counterfactual the sub-quadratic claim is judged against.
    pub all_pairs_bytes: usize,
    /// Σ tree cost / delay over the workload's final trees (regression
    /// canary: tree shapes must not drift with provider internals).
    pub sum_tree_cost: u64,
    pub sum_tree_delay: u64,
    /// SCMP engine run at this size: events processed and delivery.
    pub engine_events: u64,
    pub all_delivered: bool,
}

/// Deterministic measurements of one 5k fig-shaped cell.
#[derive(Clone, Debug, Serialize)]
pub struct FigRow {
    pub protocol: String,
    pub n: usize,
    pub group_size: usize,
    pub data_overhead: u64,
    pub protocol_overhead: u64,
    pub p50_e2e_delay: u64,
    pub max_e2e_delay: u64,
    pub all_delivered: bool,
    pub engine_events: u64,
}

/// Wall-clock / memory observations. Excluded from the determinism
/// guard: worker interleaving and allocator state may legitimately move
/// these.
#[derive(Clone, Debug, Serialize)]
pub struct TimingRow {
    pub label: String,
    pub n: usize,
    pub topo_build_ms: f64,
    /// Whole Zipf workload (curve cells) or engine drive (fig cells).
    pub workload_ms: f64,
    /// DCDM join latency over the workload (µs); 0 for fig cells.
    pub join_mean_us: f64,
    pub join_max_us: f64,
    pub engine_ms: f64,
    pub events_per_sec: f64,
    /// Process peak RSS after the cell (`VmHWM`; cumulative across
    /// cells by nature).
    pub peak_rss_bytes: Option<u64>,
    /// Process current RSS after the cell (`VmRSS`).
    pub current_rss_bytes: Option<u64>,
}

/// Full study output, written to `bench_results/scale.json`.
#[derive(Debug, Serialize)]
pub struct ScaleReport {
    pub smoke: bool,
    pub curve: Vec<CurveRow>,
    pub fig_5k: Vec<FigRow>,
    pub timing: Vec<TimingRow>,
}

impl ScaleReport {
    /// The portion the serial-vs-parallel guard byte-compares.
    pub fn deterministic_json(&self) -> String {
        format!(
            "{{\"curve\":{},\"fig_5k\":{}}}",
            serde_json::to_string(&self.curve).expect("serialise"),
            serde_json::to_string(&self.fig_5k).expect("serialise")
        )
    }
}

/// Peak resident set size of this process (`VmHWM`), bytes.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kib("VmHWM:")
}

/// Current resident set size of this process (`VmRSS`), bytes.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kib("VmRSS:")
}

fn proc_status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kib: u64 = line[field.len()..]
        .split_whitespace()
        .next()?
        .parse()
        .ok()?;
    Some(kib * 1024)
}

#[derive(Clone, Copy, Debug)]
enum Cell {
    Curve {
        family: Family,
        target: usize,
    },
    Fig {
        proto: ProtocolKind,
        group_size: usize,
    },
}

/// Node-count targets for the curve.
pub fn curve_targets(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![300, 600, 1000]
    } else {
        vec![1000, 2000, 5000, 10_000]
    }
}

fn cells(smoke: bool) -> Vec<Cell> {
    let mut out = Vec::new();
    for family in [Family::TransitStub, Family::Waxman] {
        for target in curve_targets(smoke) {
            out.push(Cell::Curve { family, target });
        }
    }
    if !smoke {
        for group_size in [25usize, 50, 100] {
            for proto in [ProtocolKind::Scmp, ProtocolKind::Cbt, ProtocolKind::Mospf] {
                out.push(Cell::Fig { proto, group_size });
            }
        }
    }
    out
}

/// Run the study on `jobs` workers. Deterministic output is invariant
/// in `jobs`; timings are not.
pub fn run(smoke: bool, jobs: usize) -> ScaleReport {
    let runner = SweepRunner::new(jobs);
    let all = cells(smoke);
    let outcomes = runner.run(&all, |_, &cell| match cell {
        Cell::Curve { family, target } => {
            let (row, t) = run_curve_cell(family, target, smoke);
            (Some(row), None, t)
        }
        Cell::Fig { proto, group_size } => {
            let (row, t) = run_fig_cell(proto, group_size);
            (None, Some(row), t)
        }
    });
    let mut report = ScaleReport {
        smoke,
        curve: Vec::new(),
        fig_5k: Vec::new(),
        timing: Vec::new(),
    };
    for (curve, fig, timing) in outcomes {
        report.curve.extend(curve);
        report.fig_5k.extend(fig);
        report.timing.push(timing);
    }
    report
}

/// Zipf workload shape for one curve point.
fn workload_shape(n: usize, smoke: bool) -> (usize, usize) {
    let groups = if smoke { 16 } else { 32 };
    let joins = if smoke {
        (n / 4).min(200)
    } else {
        (n / 4).min(1000)
    };
    (groups, joins.max(groups))
}

fn run_curve_cell(family: Family, target: usize, smoke: bool) -> (CurveRow, TimingRow) {
    let t0 = Instant::now();
    let topo = family.build(target);
    let topo_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let n = topo.node_count();
    let provider = OnDemandPaths::from_topology(&topo);

    // Zipf-popularity membership churn over G groups: each join event
    // picks its group by rank popularity and grafts a uniformly-drawn
    // member with DCDM, exactly what the m-router would run.
    let (groups, joins) = workload_shape(n, smoke);
    let zipf = Zipf::new(groups, 1.0);
    let mut rng = rng_for("scale-members", SEED ^ ((target as u64) << 8));
    let roots: Vec<NodeId> = (0..groups)
        .map(|_| NodeId(rng.gen_range(0..n as u32)))
        .collect();
    let mut dcdms: Vec<Dcdm> = roots
        .iter()
        .map(|&r| Dcdm::new(&topo, &provider, r, DelayBound::Dynamic))
        .collect();
    let mut members: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); groups];
    let mut done = 0usize;
    let mut lat_sum_us = 0.0f64;
    let mut lat_max_us = 0.0f64;
    let w0 = Instant::now();
    for _ in 0..joins {
        let g = zipf.sample(&mut rng);
        let mut m = NodeId(rng.gen_range(0..n as u32));
        let mut tries = 0;
        while (members[g].contains(&m) || m == roots[g]) && tries < 16 {
            m = NodeId(rng.gen_range(0..n as u32));
            tries += 1;
        }
        if members[g].contains(&m) || m == roots[g] {
            continue; // group saturated this draw; keep the rng stream
        }
        let j0 = Instant::now();
        dcdms[g].join(m);
        let us = j0.elapsed().as_secs_f64() * 1e6;
        lat_sum_us += us;
        lat_max_us = lat_max_us.max(us);
        members[g].insert(m);
        done += 1;
    }
    let workload_ms = w0.elapsed().as_secs_f64() * 1e3;
    let stats = provider.stats();
    let per_tree = provider
        .tree(roots[0], scmp_net::Metric::Delay)
        .resident_bytes();
    let sum_tree_cost: u64 = dcdms.iter().map(|d| d.tree().tree_cost(&topo)).sum();
    let sum_tree_delay: u64 = dcdms.iter().map(|d| d.tree().tree_delay(&topo)).sum();

    // One SCMP engine run at this size: does the full control plane
    // (JOIN → DCDM → TREE/BRANCH distribution → data delivery) hold up,
    // and at what event rate?
    let e0 = Instant::now();
    let (engine_events, all_delivered) = engine_run(&topo, smoke);
    let engine_ms = e0.elapsed().as_secs_f64() * 1e3;

    let row = CurveRow {
        family: family.label().to_string(),
        n,
        edges: topo.edges().len(),
        topo_bytes: topo.resident_bytes(),
        groups,
        joins: done,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_evictions: stats.evictions,
        resident_trees: stats.resident,
        path_bytes: provider.resident_path_bytes(),
        all_pairs_bytes: 2 * n * per_tree,
        sum_tree_cost,
        sum_tree_delay,
        engine_events,
        all_delivered,
    };
    let timing = TimingRow {
        label: format!("curve/{}", family.label()),
        n,
        topo_build_ms,
        workload_ms,
        join_mean_us: if done > 0 {
            lat_sum_us / done as f64
        } else {
            0.0
        },
        join_max_us: lat_max_us,
        engine_ms,
        events_per_sec: if engine_ms > 0.0 {
            engine_events as f64 / (engine_ms / 1e3)
        } else {
            0.0
        },
        peak_rss_bytes: peak_rss_bytes(),
        current_rss_bytes: current_rss_bytes(),
    };
    (row, timing)
}

/// Draw `count` distinct non-`center` nodes.
fn draw_members(topo: &Topology, center: NodeId, count: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let n = topo.node_count() as u32;
    let mut picked = BTreeSet::new();
    while picked.len() < count.min(topo.node_count() - 1) {
        let v = NodeId(rng.gen_range(0..n));
        if v != center {
            picked.insert(v);
        }
    }
    picked.into_iter().collect()
}

/// An off-tree source: a neighbour of `center` outside the group, as in
/// the §IV-B setup.
fn pick_source(topo: &Topology, center: NodeId, members: &[NodeId]) -> NodeId {
    topo.neighbors(center)
        .iter()
        .map(|e| e.to)
        .find(|v| !members.contains(v))
        .unwrap_or(center)
}

/// Farthest shortest-delay distance from `center` — the propagation
/// horizon the send schedule must respect. The paper-scale benches get
/// away with a fixed 4-second settle; a 10k-node transit–stub's stub
/// rings push one-way delays past it, so here the settle window scales
/// with the topology (deterministic: a pure function of the graph).
fn delay_horizon(topo: &Topology, center: NodeId) -> u64 {
    let spt = scmp_net::dijkstra(topo, center, scmp_net::Metric::Delay);
    topo.nodes()
        .filter_map(|v| spt.distance(v))
        .max()
        .unwrap_or(0)
}

fn drive(e: &mut dyn EngineRunner, members: &[NodeId], source: NodeId, horizon: u64) -> u64 {
    let mut t = 0;
    for &m in members {
        e.schedule_app(t, m, AppEvent::Join(GROUP));
        t += 2_000;
    }
    // JOIN → graft → ack round trips are bounded by a few horizons;
    // settle well past that before the first send.
    let start = t + 4 * SECOND + 4 * horizon;
    for k in 0..PACKETS {
        e.schedule_app(
            start + k * SECOND,
            source,
            AppEvent::Send {
                group: GROUP,
                tag: k + 1,
            },
        );
    }
    e.run_to_quiescence()
}

fn check_delivery(stats: &SimStats, members: &[NodeId]) -> bool {
    members
        .iter()
        .all(|&m| (1..=PACKETS).all(|tag| stats.delivery_count(GROUP, tag, m) == 1))
}

fn engine_run(topo: &Topology, smoke: bool) -> (u64, bool) {
    let center = NodeId(0);
    let mut rng = rng_for("scale-engine", SEED ^ topo.node_count() as u64);
    let members = draw_members(topo, center, if smoke { 16 } else { 32 }, &mut rng);
    let source = pick_source(topo, center, &members);
    let horizon = delay_horizon(topo, center);
    let mut e = build_engine(ProtocolKind::Scmp, topo, &ProtocolParams::new(center));
    let events = drive(e.as_mut(), &members, source, horizon);
    let delivered = check_delivery(e.stats(), &members);
    (events, delivered)
}

fn run_fig_cell(proto: ProtocolKind, group_size: usize) -> (FigRow, TimingRow) {
    let t0 = Instant::now();
    let topo = Family::TransitStub.build(5000);
    let topo_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let center = NodeId(0);
    let mut rng = rng_for("scale-fig", SEED ^ ((group_size as u64) << 16));
    let members = draw_members(&topo, center, group_size, &mut rng);
    let source = pick_source(&topo, center, &members);
    let params = ProtocolParams {
        center,
        dvmrp_prune_timeout: 10 * SECOND,
    };
    let horizon = delay_horizon(&topo, center);
    let e0 = Instant::now();
    let mut e = build_engine(proto, &topo, &params);
    let engine_events = drive(e.as_mut(), &members, source, horizon);
    let engine_ms = e0.elapsed().as_secs_f64() * 1e3;
    let stats = e.stats();
    let row = FigRow {
        protocol: proto.label().to_string(),
        n: topo.node_count(),
        group_size: members.len(),
        data_overhead: stats.data_overhead,
        protocol_overhead: stats.protocol_overhead,
        p50_e2e_delay: stats.e2e_delay_hist.p50(),
        max_e2e_delay: stats.max_end_to_end_delay,
        all_delivered: check_delivery(stats, &members),
        engine_events,
    };
    let timing = TimingRow {
        label: format!("fig5k/{}", proto.label()),
        n: topo.node_count(),
        topo_build_ms,
        workload_ms: engine_ms,
        join_mean_us: 0.0,
        join_max_us: 0.0,
        engine_ms,
        events_per_sec: if engine_ms > 0.0 {
            engine_events as f64 / (engine_ms / 1e3)
        } else {
            0.0
        },
        peak_rss_bytes: peak_rss_bytes(),
        current_rss_bytes: current_rss_bytes(),
    };
    (row, timing)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_rank_ordered_and_deterministic() {
        let z = Zipf::new(8, 1.0);
        let mut rng = rng_for("zipf-test", 7);
        let mut counts = [0usize; 8];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[3] && counts[3] > counts[7]);
        let mut rng2 = rng_for("zipf-test", 7);
        let replay: Vec<usize> = (0..50).map(|_| z.sample(&mut rng2)).collect();
        let mut rng3 = rng_for("zipf-test", 7);
        let again: Vec<usize> = (0..50).map(|_| z.sample(&mut rng3)).collect();
        assert_eq!(replay, again);
    }

    #[test]
    fn transit_stub_params_hit_targets() {
        for target in [300, 1000, 2000, 5000, 10_000] {
            let (t, s, k) = transit_stub_params(target);
            let n = t * (1 + s * k);
            assert!(n >= target, "{target} -> {n}");
            assert!(n < target + target / 2, "{target} -> {n} overshoots");
        }
    }

    #[test]
    fn smoke_curve_cell_is_deterministic_and_subquadratic() {
        let (a, _) = run_curve_cell(Family::TransitStub, 300, true);
        let (b, _) = run_curve_cell(Family::TransitStub, 300, true);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert!(a.all_delivered);
        assert!(
            a.path_bytes < a.all_pairs_bytes / 4,
            "lazy path state ({}) must undercut all-pairs ({}) by 4x+",
            a.path_bytes,
            a.all_pairs_bytes
        );
    }

    #[test]
    fn rss_probe_reads_proc() {
        // Linux-only environment: both fields must parse.
        assert!(peak_rss_bytes().unwrap_or(0) > 0);
        assert!(current_rss_bytes().unwrap_or(0) > 0);
    }
}
