//! Engine hot-path microbenchmark: raw event throughput of the
//! discrete-event core, independent of any protocol logic.
//!
//! A dedup-flood protocol (the cheapest state machine that still
//! exercises `send`/`deliver_local` fan-out) floods a 50-node
//! average-degree-5 GT-ITM topology with a burst of payloads. Every
//! flood packet crosses every live link once in each direction, so the
//! event count is dominated by queue push/pop — exactly the path the
//! arena-backed [`scmp_sim::Engine`] queue optimises. The binary writes
//! events/sec and peak queue depth to `bench_results/engine_hotpath.json`;
//! EXPERIMENTS.md tracks the numbers across engine changes.

use scmp_net::rng::rng_for;
use scmp_net::topology::{gt_itm_flat, GtItmConfig};
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Ctx, Engine, GroupId, JsonlSink, Packet, RingSink, Router};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::Instant;

/// Dedup-flood: forward every unseen payload to all neighbours except
/// the one it came from.
struct Flood {
    me: NodeId,
    seen: HashSet<u64>,
}

#[derive(Clone, Debug)]
struct Payload;

impl Router for Flood {
    type Msg = Payload;

    fn on_packet(&mut self, from: NodeId, pkt: Packet<Payload>, ctx: &mut Ctx<'_, Payload>) {
        if !self.seen.insert(pkt.tag) {
            ctx.drop_packet();
            return;
        }
        ctx.deliver_local(&pkt);
        let me = self.me;
        let neighbors: Vec<NodeId> = ctx.topo().neighbors(me).iter().map(|e| e.to).collect();
        for n in neighbors {
            if n != from {
                ctx.send(n, pkt.clone());
            }
        }
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, Payload>) {
        if let AppEvent::Send { group, tag } = ev {
            self.seen.insert(tag);
            let pkt = Packet::data(group, tag, ctx.now(), Payload);
            ctx.deliver_local(&pkt);
            let me = self.me;
            let neighbors: Vec<NodeId> = ctx.topo().neighbors(me).iter().map(|e| e.to).collect();
            for n in neighbors {
                ctx.send(n, pkt.clone());
            }
        }
    }
}

/// Which telemetry sink the benchmark installs — the overhead
/// comparison of EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkMode {
    /// Default `NullSink`: the zero-cost-when-disabled baseline.
    Off,
    /// Bounded in-memory ring (64k events).
    Ring,
    /// JSONL encoding streamed to `io::sink()` — measures the encoding
    /// cost without filesystem noise.
    Jsonl,
}

impl SinkMode {
    /// All modes, in report order.
    pub const ALL: [SinkMode; 3] = [SinkMode::Off, SinkMode::Ring, SinkMode::Jsonl];

    /// Label used in tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SinkMode::Off => "off",
            SinkMode::Ring => "ring",
            SinkMode::Jsonl => "jsonl",
        }
    }
}

/// One timed repetition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HotpathRun {
    /// Events dispatched by the engine.
    pub events: u64,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Throughput of this repetition.
    pub events_per_sec: f64,
}

/// The benchmark's JSON artefact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HotpathResult {
    /// Topology label.
    pub topology: String,
    /// Telemetry sink installed during the run.
    pub sink: String,
    /// Node count.
    pub nodes: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Flood payloads injected.
    pub sends: u64,
    /// Events dispatched per repetition (identical across reps — the
    /// engine is deterministic).
    pub events: u64,
    /// Deepest the event queue got (same every rep).
    pub peak_queue_depth: usize,
    /// Best observed throughput (the least-noisy estimate).
    pub best_events_per_sec: f64,
    /// Every timed repetition.
    pub runs: Vec<HotpathRun>,
}

fn build_engine() -> Engine<Flood> {
    let topo = gt_itm_flat(&GtItmConfig::paper(5.0), &mut rng_for("engine-hotpath", 0));
    Engine::new(topo, |me, _, _| Flood {
        me,
        seen: HashSet::new(),
    })
}

/// Run the flood benchmark: `sends` payloads injected in bursts of 50
/// (one per node), repeated `reps` times on a fresh engine each rep.
/// Telemetry stays at the default `NullSink`.
pub fn run(sends: u64, reps: u64) -> HotpathResult {
    run_with_sink(sends, reps, SinkMode::Off)
}

/// Like [`run`], with an explicit telemetry sink installed — the
/// telemetry-overhead comparison.
pub fn run_with_sink(sends: u64, reps: u64, mode: SinkMode) -> HotpathResult {
    let mut runs = Vec::new();
    let mut events = 0;
    let mut peak = 0;
    for _ in 0..reps.max(1) {
        let run = one_rep(sends, mode);
        events = run.0.events;
        peak = run.1;
        runs.push(run.0);
    }
    assemble(mode, sends, events, peak, runs)
}

/// All three sink modes measured with their repetitions interleaved
/// round-robin (off, ring, jsonl, off, ring, …), so slow drift in
/// machine load hits every mode equally — sequential per-mode phases
/// were observed to fake double-digit overheads on a busy single-core
/// host. Returns results in [`SinkMode::ALL`] order.
pub fn run_overhead(sends: u64, reps: u64) -> Vec<HotpathResult> {
    let mut per_mode: Vec<Vec<HotpathRun>> = vec![Vec::new(); SinkMode::ALL.len()];
    let mut events = 0;
    let mut peak = 0;
    for _ in 0..reps.max(1) {
        for (i, mode) in SinkMode::ALL.into_iter().enumerate() {
            let run = one_rep(sends, mode);
            events = run.0.events;
            peak = run.1;
            per_mode[i].push(run.0);
        }
    }
    SinkMode::ALL
        .into_iter()
        .zip(per_mode)
        .map(|(mode, runs)| assemble(mode, sends, events, peak, runs))
        .collect()
}

/// Fractional slowdown of `sinked` relative to `off` (0.05 = 5%),
/// estimated from paired repetitions.
///
/// Both results must come from the same interleaved [`run_overhead`]
/// pass: rep `i` of each mode ran adjacent in time, so the ratio
/// within a pair is clean even when machine load drifts across the
/// pass. External noise only ever slows a rep down, so the pair whose
/// ratio is *highest* is the least contaminated — the same reasoning
/// that makes best-of-reps the throughput estimate. Falls back to the
/// ratio of bests when the rep counts differ (foreign baselines).
pub fn paired_overhead(off: &HotpathResult, sinked: &HotpathResult) -> f64 {
    let best_ratio = if off.runs.len() == sinked.runs.len() && !off.runs.is_empty() {
        off.runs
            .iter()
            .zip(&sinked.runs)
            .map(|(o, s)| s.events_per_sec / o.events_per_sec)
            .fold(f64::MIN, f64::max)
    } else {
        sinked.best_events_per_sec / off.best_events_per_sec
    };
    // A lucky pair can push the ratio past 1 (noise hit the off rep);
    // true overhead is never negative, so clamp.
    (1.0 - best_ratio).max(0.0)
}

/// One timed flood on a fresh engine; returns the run and the peak
/// queue depth.
fn one_rep(sends: u64, mode: SinkMode) -> (HotpathRun, usize) {
    let mut e = build_engine();
    let nodes = e.topo().node_count();
    match mode {
        SinkMode::Off => {}
        SinkMode::Ring => e.set_sink(Box::new(RingSink::new(1 << 16))),
        SinkMode::Jsonl => e.set_sink(Box::new(JsonlSink::new(std::io::sink()))),
    }
    // Inject in per-tick bursts (one send per node) so the queue
    // carries many concurrent floods — a deep, realistic heap.
    for tag in 0..sends {
        let node = NodeId((tag % nodes as u64) as u32);
        let time = (tag / nodes as u64) * 10;
        e.schedule_app(
            time,
            node,
            AppEvent::Send {
                group: GroupId(1),
                tag,
            },
        );
    }
    let t0 = Instant::now();
    let n = e.run_to_quiescence();
    let wall = t0.elapsed();
    (
        HotpathRun {
            events: n,
            wall_ms: wall.as_secs_f64() * 1e3,
            events_per_sec: n as f64 / wall.as_secs_f64().max(1e-9),
        },
        e.peak_queue_depth(),
    )
}

fn assemble(
    mode: SinkMode,
    sends: u64,
    events: u64,
    peak: usize,
    runs: Vec<HotpathRun>,
) -> HotpathResult {
    let probe = build_engine();
    let best = runs
        .iter()
        .map(|r| r.events_per_sec)
        .fold(0.0_f64, f64::max);
    HotpathResult {
        topology: "random50-deg5".to_string(),
        sink: mode.label().to_string(),
        nodes: probe.topo().node_count(),
        edges: probe.topo().edge_count(),
        sends,
        events,
        peak_queue_depth: peak,
        best_events_per_sec: best,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_benchmark_is_deterministic_and_busy() {
        let a = run(200, 1);
        let b = run(200, 1);
        assert_eq!(a.events, b.events, "event count must not vary across runs");
        assert_eq!(a.peak_queue_depth, b.peak_queue_depth);
        // 200 floods over ~125 edges: well over 10k events.
        assert!(a.events > 10_000, "only {} events", a.events);
        assert!(
            a.peak_queue_depth > 50,
            "queue never got deep: {}",
            a.peak_queue_depth
        );
    }

    #[test]
    fn sink_modes_dispatch_identical_event_counts() {
        // Telemetry must observe, never steer: every sink mode processes
        // exactly the same event stream.
        let off = run_with_sink(100, 1, SinkMode::Off);
        let ring = run_with_sink(100, 1, SinkMode::Ring);
        let jsonl = run_with_sink(100, 1, SinkMode::Jsonl);
        assert_eq!(off.events, ring.events);
        assert_eq!(off.events, jsonl.events);
        assert_eq!(off.peak_queue_depth, ring.peak_queue_depth);
        assert_eq!(off.sink, "off");
        assert_eq!(ring.sink, "ring");
        assert_eq!(jsonl.sink, "jsonl");
    }
}
