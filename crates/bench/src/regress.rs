//! Perf-regression gate: re-run the engine hot-path benches and compare
//! against the committed baselines under `bench_results/` with
//! per-metric tolerance bands.
//!
//! The tolerance model distinguishes two metric classes:
//!
//! * **Deterministic structure** — `nodes`, `edges`, `events`,
//!   `peak_queue_depth`. The engine is a deterministic discrete-event
//!   core, so these must match the baseline *exactly*; any drift means
//!   the benchmark workload itself changed and the throughput numbers
//!   are no longer comparable.
//! * **Wall-clock throughput** — noisy on shared CI hosts, so it gets a
//!   band, not equality. The off-sink best-of-reps must stay above
//!   `throughput_floor` × the committed best (default 0.55: generous
//!   enough for a noisy neighbour, tight enough that a 2× slowdown —
//!   the canonical "accidentally quadratic" regression — always trips).
//!   Sink overheads (ring/jsonl slowdown relative to off) are ratios of
//!   two same-host runs, so noise largely cancels; they are allowed the
//!   committed overhead plus `overhead_slack` absolute points.
//!
//! `inject` divides every measured throughput by a factor before
//! comparison — the gate's own self-test: `--inject 2` must fail, which
//! `scripts/test-offline.sh` asserts right after the clean smoke pass.

use crate::chaos::{self, ChaosReport};
use crate::hotpath::{self, HotpathResult};
use serde::Serialize;
use std::path::Path;

/// Tolerance bands for the noisy (wall-clock) metrics.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Tolerances {
    /// Measured off-sink throughput must exceed this fraction of the
    /// committed best.
    pub throughput_floor: f64,
    /// Measured sink overhead may exceed the committed overhead by at
    /// most this many absolute points (0.10 = ten percentage points).
    pub overhead_slack: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            throughput_floor: 0.55,
            // Sink overheads on a noisy single-core host were observed
            // swinging ~18 points run to run even with the paired
            // estimator, so this band only catches gross regressions
            // (per-record allocation or encoding on the ring path); the
            // precise signals are the exact structure checks and the
            // throughput floor.
            overhead_slack: 0.25,
        }
    }
}

/// One metric comparison: baseline, measured, the band applied, verdict.
#[derive(Clone, Debug, Serialize)]
pub struct Check {
    pub metric: String,
    pub baseline: f64,
    pub measured: f64,
    /// Human-readable band, e.g. `exact` or `>= 0.55x`.
    pub band: String,
    /// The values are fractions best shown as percentages (overheads).
    pub percent: bool,
    pub pass: bool,
}

impl Check {
    fn exact(metric: &str, baseline: f64, measured: f64) -> Check {
        Check {
            metric: metric.to_string(),
            baseline,
            measured,
            band: "exact".to_string(),
            percent: false,
            pass: baseline == measured,
        }
    }

    fn floor(metric: &str, baseline: f64, measured: f64, ratio: f64) -> Check {
        Check {
            metric: metric.to_string(),
            baseline,
            measured,
            band: format!(">= {ratio:.2}x baseline"),
            percent: false,
            pass: measured >= ratio * baseline,
        }
    }

    fn ceiling(metric: &str, baseline: f64, measured: f64, slack: f64) -> Check {
        Check {
            metric: metric.to_string(),
            baseline,
            measured,
            band: format!("<= baseline + {:.0}pt", slack * 100.0),
            percent: true,
            pass: measured <= baseline + slack,
        }
    }

    fn fmt(&self, v: f64) -> String {
        if self.percent {
            format!("{:.1}%", v * 100.0)
        } else {
            format!("{v:.0}")
        }
    }
}

/// The gate's verdict: every check, plus the knobs that produced it.
#[derive(Clone, Debug, Serialize)]
pub struct RegressReport {
    pub sends: u64,
    pub reps: u64,
    /// Throughput divisor applied before comparison (1.0 = none).
    pub inject: f64,
    pub tolerances: Tolerances,
    pub checks: Vec<Check>,
    pub passed: bool,
}

impl RegressReport {
    /// Table rows for [`crate::report::print_table`].
    pub fn rows(&self) -> Vec<Vec<String>> {
        self.checks
            .iter()
            .map(|c| {
                vec![
                    c.metric.clone(),
                    c.fmt(c.baseline),
                    c.fmt(c.measured),
                    c.band.clone(),
                    if c.pass { "ok" } else { "FAIL" }.to_string(),
                ]
            })
            .collect()
    }
}

/// Load a committed `engine_hotpath.json` baseline.
pub fn load_baseline(path: &Path) -> Result<HotpathResult, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load a committed `telemetry_overhead.json` baseline (off/ring/jsonl,
/// in that order).
pub fn load_overhead_baseline(path: &Path) -> Result<Vec<HotpathResult>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let v: Vec<HotpathResult> =
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if v.len() != 3 {
        return Err(format!(
            "{}: expected 3 sink modes, found {}",
            path.display(),
            v.len()
        ));
    }
    Ok(v)
}

/// Load a committed `chaos.json` baseline (the reliability band source).
pub fn load_chaos_baseline(path: &Path) -> Result<ChaosReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Re-run the chaos sweep and hold the reliability tier to its band:
/// absolute worst-seed delivery floors (0.95 up to 10% loss, 0.85
/// above — the tier's acceptance numbers) and a 2x ceiling on
/// worst-case gap-recovery latency relative to the committed curve.
///
/// `seeds` may be smaller than the baseline's (smoke re-runs one seed):
/// the checks stay sound because the engine is deterministic, so fresh
/// seeds are a subset of the committed realisations — a fresh max can
/// only blow the latency ceiling if the code's recovery behaviour
/// actually drifted.
///
/// # Panics
/// When the sweep itself violates a protocol invariant (see
/// [`chaos::run`]) — that is a correctness bug, not a perf regression.
pub fn chaos_recovery_checks(baseline: &ChaosReport, seeds: u64, jobs: usize) -> Vec<Check> {
    let fresh = chaos::run(seeds.clamp(1, baseline.seeds.max(1)), jobs);
    let mut checks = chaos_band(baseline, &fresh);
    checks.extend(partition_band(baseline, &fresh));
    checks
}

/// Pure band step of [`chaos_recovery_checks`]: fresh reliable curve
/// against the committed one. Split out so the band logic is testable
/// without running the sweep.
pub fn chaos_band(baseline: &ChaosReport, fresh: &ChaosReport) -> Vec<Check> {
    let mut checks = Vec::new();
    for (b, f) in baseline.reliable_points.iter().zip(&fresh.reliable_points) {
        if b.loss == 0.0 {
            continue;
        }
        let pct = format!("{:.0}%", b.loss * 100.0);
        let floor = if b.loss <= 0.10 { 0.95 } else { 0.85 };
        checks.push(Check {
            metric: format!("reliable_min_delivery[{pct}]"),
            baseline: floor,
            measured: f.min_delivery_ratio,
            band: format!(">= {floor:.2} absolute"),
            percent: false,
            pass: f.min_delivery_ratio >= floor,
        });
        checks.push(Check {
            metric: format!("recovery_latency_p99[{pct}]"),
            baseline: b.max_recovery_p99 as f64,
            measured: f.max_recovery_p99 as f64,
            band: "<= 2.00x baseline".to_string(),
            percent: false,
            pass: f.max_recovery_p99 as f64 <= 2.0 * b.max_recovery_p99 as f64,
        });
    }
    checks
}

/// Partition-and-heal band: the fresh series must reconverge within
/// 2x the committed worst lag (never past the absolute
/// [`chaos::RECONVERGE_WINDOW`] bound the sweep itself enforces) and
/// hold its post-heal delivery to the 0.99 acceptance floor. A
/// baseline from before the partition series existed produces no
/// checks — the band arms itself on the first committed run.
pub fn partition_band(baseline: &ChaosReport, fresh: &ChaosReport) -> Vec<Check> {
    let (Some(b), Some(f)) = (&baseline.partition, &fresh.partition) else {
        return Vec::new();
    };
    let lag_ceiling = (2 * b.max_reconverge_ticks).clamp(b.window / 2, b.window);
    vec![
        Check {
            metric: "partition_reconverge_ticks".to_string(),
            baseline: b.max_reconverge_ticks as f64,
            measured: f.max_reconverge_ticks as f64,
            band: format!("<= {lag_ceiling} (2x baseline, capped at the window)"),
            percent: false,
            pass: f.max_reconverge_ticks <= lag_ceiling,
        },
        Check {
            metric: "partition_post_heal_delivery".to_string(),
            baseline: 0.99,
            measured: f.min_post_heal_delivery,
            band: ">= 0.99 absolute".to_string(),
            percent: false,
            pass: f.min_post_heal_delivery >= 0.99,
        },
    ]
}

/// Fractional slowdown of `sinked` relative to `off` (0.05 = 5%):
/// the paired-rep estimator of [`hotpath::paired_overhead`].
pub fn overhead(off: &HotpathResult, sinked: &HotpathResult) -> f64 {
    hotpath::paired_overhead(off, sinked)
}

fn find_sink<'a>(set: &'a [HotpathResult], label: &str) -> Result<&'a HotpathResult, String> {
    set.iter()
        .find(|r| r.sink == label)
        .ok_or_else(|| format!("baseline missing sink mode {label:?}"))
}

/// Re-run the hot-path benches at the baseline's workload size and
/// compare. `reps` trades CI time for noise (smoke uses 1); `inject`
/// divides measured throughput to self-test the gate.
pub fn run_gate(
    baseline: &HotpathResult,
    overhead_baseline: &[HotpathResult],
    reps: u64,
    tol: Tolerances,
    inject: f64,
) -> Result<RegressReport, String> {
    let mut measured = hotpath::run_overhead(baseline.sends, reps);
    let inject = if inject > 0.0 { inject } else { 1.0 };
    for r in &mut measured {
        r.best_events_per_sec /= inject;
        for run in &mut r.runs {
            run.events_per_sec /= inject;
        }
    }
    let [off, ring, jsonl] = &measured[..] else {
        return Err("run_overhead returned an unexpected mode count".to_string());
    };
    let mut report = compare(baseline, overhead_baseline, off, ring, jsonl, tol)?;
    report.reps = reps;
    report.inject = inject;
    Ok(report)
}

/// Pure comparison step: measured results against the committed
/// baselines under the tolerance model. Split from [`run_gate`] so the
/// band logic is unit-testable without timing anything.
pub fn compare(
    baseline: &HotpathResult,
    overhead_baseline: &[HotpathResult],
    off: &HotpathResult,
    ring: &HotpathResult,
    jsonl: &HotpathResult,
    tol: Tolerances,
) -> Result<RegressReport, String> {
    let base_off = find_sink(overhead_baseline, "off")?;
    let base_ring = find_sink(overhead_baseline, "ring")?;
    let base_jsonl = find_sink(overhead_baseline, "jsonl")?;

    let checks = vec![
        Check::exact("nodes", baseline.nodes as f64, off.nodes as f64),
        Check::exact("edges", baseline.edges as f64, off.edges as f64),
        Check::exact("events", baseline.events as f64, off.events as f64),
        Check::exact(
            "peak_queue_depth",
            baseline.peak_queue_depth as f64,
            off.peak_queue_depth as f64,
        ),
        Check::floor(
            "best_events_per_sec[off]",
            base_off.best_events_per_sec,
            off.best_events_per_sec,
            tol.throughput_floor,
        ),
        Check::ceiling(
            "overhead[ring]",
            overhead(base_off, base_ring),
            overhead(off, ring),
            tol.overhead_slack,
        ),
        Check::ceiling(
            "overhead[jsonl]",
            overhead(base_off, base_jsonl),
            overhead(off, jsonl),
            tol.overhead_slack,
        ),
    ];
    let passed = checks.iter().all(|c| c.pass);
    Ok(RegressReport {
        sends: baseline.sends,
        reps: off.runs.len() as u64,
        inject: 1.0,
        tolerances: tol,
        checks,
        passed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(sink: &str, best: f64) -> HotpathResult {
        HotpathResult {
            topology: "random50-deg5".to_string(),
            sink: sink.to_string(),
            nodes: 50,
            edges: 121,
            sends: 40,
            events: 7_000,
            peak_queue_depth: 300,
            best_events_per_sec: best,
            runs: Vec::new(),
        }
    }

    #[test]
    fn overhead_is_a_fractional_slowdown() {
        let off = fake("off", 1_000_000.0);
        let ring = fake("ring", 950_000.0);
        assert!((overhead(&off, &ring) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn baselines_round_trip_through_json() {
        let set = vec![
            fake("off", 3.0e6),
            fake("ring", 2.9e6),
            fake("jsonl", 2.5e6),
        ];
        let dir = std::env::temp_dir().join("scmp-regress-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("telemetry_overhead.json");
        std::fs::write(&p, serde_json::to_string_pretty(&set).unwrap()).unwrap();
        let back = load_overhead_baseline(&p).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].sink, "off");
        assert_eq!(back[2].best_events_per_sec, 2.5e6);
        let q = dir.join("engine_hotpath.json");
        std::fs::write(&q, serde_json::to_string_pretty(&set[0]).unwrap()).unwrap();
        assert_eq!(load_baseline(&q).unwrap().events, 7_000);
    }

    /// Band logic on synthetic numbers: an identical re-measurement
    /// passes, a 2x throughput drop trips exactly the floor check, and
    /// structural drift trips the exact checks.
    #[test]
    fn compare_passes_clean_and_trips_on_regressions() {
        let set = vec![
            fake("off", 1.0e6),
            fake("ring", 0.95e6),
            fake("jsonl", 0.80e6),
        ];
        let tol = Tolerances::default();
        let clean = compare(&set[0], &set, &set[0], &set[1], &set[2], tol).unwrap();
        assert!(clean.passed, "identical rerun failed: {:?}", clean.checks);
        assert_eq!(clean.checks.len(), 7);

        // 2x slowdown across the board (the --inject 2 path divides all
        // three measurements): overhead ratios cancel, only the
        // throughput floor trips.
        let halved: Vec<HotpathResult> = set
            .iter()
            .map(|r| fake(&r.sink, r.best_events_per_sec / 2.0))
            .collect();
        let slow = compare(&set[0], &set, &halved[0], &halved[1], &halved[2], tol).unwrap();
        assert!(!slow.passed, "2x regression not detected");
        let tripped: Vec<&str> = slow
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.metric.as_str())
            .collect();
        assert_eq!(tripped, vec!["best_events_per_sec[off]"]);

        // Sink overhead blowing past its band (ring suddenly 40% slow
        // against a committed 5%) trips the ring ceiling even though
        // raw throughput stays above the floor.
        let heavy = fake("ring", 0.60e6);
        let ring_bad = compare(&set[0], &set, &set[0], &heavy, &set[2], tol).unwrap();
        assert!(!ring_bad.passed);
        assert!(ring_bad
            .checks
            .iter()
            .any(|c| c.metric == "overhead[ring]" && !c.pass));

        // Structural drift: a different event count means the workload
        // changed — exact check must trip.
        let mut drifted = fake("off", 1.0e6);
        drifted.events += 1;
        let structural = compare(&set[0], &set, &drifted, &set[1], &set[2], tol).unwrap();
        assert!(!structural.passed);
        assert!(structural
            .checks
            .iter()
            .any(|c| c.metric == "events" && !c.pass));
    }

    fn fake_chaos(specs: &[(f64, f64, u64)]) -> ChaosReport {
        let points: Vec<chaos::ChaosPoint> = specs
            .iter()
            .map(|&(loss, min_del, p99)| chaos::ChaosPoint {
                loss,
                mean_delivery_ratio: min_del,
                min_delivery_ratio: min_del,
                mean_retransmissions: 0.0,
                takeovers: 0,
                mean_nacks: if loss > 0.0 { 4.0 } else { 0.0 },
                nack_suppression_ratio: 0.5,
                cache_hit_rate: 0.8,
                mean_recovery_p50: p99 as f64 / 2.0,
                max_recovery_p99: p99,
            })
            .collect();
        ChaosReport {
            seeds: 3,
            points: points.clone(),
            reliable_points: points,
            cells: Vec::new(),
            partition: Some(chaos::ChaosPartitionSummary {
                heal_at: chaos::HEAL_AT,
                window: chaos::RECONVERGE_WINDOW,
                cells: 3,
                stranded_cells: 2,
                takeover_cells: 1,
                max_reconverge_ticks: 4_000,
                min_post_heal_delivery: 1.0,
            }),
            partition_cells: Vec::new(),
        }
    }

    /// The reliability band: absolute delivery floors at the tier's
    /// acceptance numbers, 2x ceiling on worst-case recovery latency.
    #[test]
    fn chaos_band_floors_and_latency_ceiling() {
        let baseline = fake_chaos(&[
            (0.0, 1.0, 0),
            (0.05, 1.0, 900),
            (0.10, 0.99, 1200),
            (0.15, 0.97, 1500),
            (0.20, 0.95, 2000),
        ]);
        let clean = chaos_band(&baseline, &baseline);
        // Lossless point produces no checks; each lossy point two.
        assert_eq!(clean.len(), 8);
        assert!(clean.iter().all(|c| c.pass), "{clean:?}");

        // Worst-seed delivery at 10% loss dipping to 0.90 trips the
        // 0.95 floor; the same value at 20% loss clears the 0.85 one.
        let mut dipped = baseline.clone();
        dipped.reliable_points[2].min_delivery_ratio = 0.90;
        dipped.reliable_points[4].min_delivery_ratio = 0.90;
        let tripped: Vec<String> = chaos_band(&baseline, &dipped)
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.metric.clone())
            .collect();
        assert_eq!(tripped, vec!["reliable_min_delivery[10%]"]);

        // Recovery latency blowing past 2x the committed worst trips
        // the ceiling.
        let mut slow = baseline.clone();
        slow.reliable_points[4].max_recovery_p99 = 4100;
        let tripped: Vec<String> = chaos_band(&baseline, &slow)
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.metric.clone())
            .collect();
        assert_eq!(tripped, vec!["recovery_latency_p99[20%]"]);
    }

    /// The partition band: reconvergence lag ceiling at 2x baseline
    /// (clamped into `[window/2, window]`) and the 0.99 post-heal
    /// delivery floor; pre-partition baselines arm no checks.
    #[test]
    fn partition_band_lag_ceiling_and_delivery_floor() {
        let baseline = fake_chaos(&[(0.0, 1.0, 0)]);
        let clean = partition_band(&baseline, &baseline);
        assert_eq!(clean.len(), 2);
        assert!(clean.iter().all(|c| c.pass), "{clean:?}");

        // 2x the committed 4000-tick lag is 8000; 9000 trips it.
        let mut slow = baseline.clone();
        slow.partition.as_mut().unwrap().max_reconverge_ticks = 9_000;
        let tripped: Vec<String> = partition_band(&baseline, &slow)
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.metric.clone())
            .collect();
        assert_eq!(tripped, vec!["partition_reconverge_ticks"]);

        let mut lossy = baseline.clone();
        lossy.partition.as_mut().unwrap().min_post_heal_delivery = 0.97;
        let tripped: Vec<String> = partition_band(&baseline, &lossy)
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.metric.clone())
            .collect();
        assert_eq!(tripped, vec!["partition_post_heal_delivery"]);

        // A committed lag of 0 still allows half the window (a fresh
        // run reconverging at scan granularity must not trip a
        // degenerate 0-tick ceiling).
        let mut zero = baseline.clone();
        zero.partition.as_mut().unwrap().max_reconverge_ticks = 0;
        let mut fresh = baseline.clone();
        fresh.partition.as_mut().unwrap().max_reconverge_ticks = chaos::RECONVERGE_WINDOW / 2;
        assert!(partition_band(&zero, &fresh).iter().all(|c| c.pass));

        let mut old = baseline.clone();
        old.partition = None;
        assert!(partition_band(&old, &baseline).is_empty());
    }

    /// `run_gate` end to end with a live (tiny) measurement as its own
    /// baseline: the deterministic structure checks must hold exactly,
    /// and the report carries the inject factor through.
    #[test]
    fn gate_structure_checks_are_exact_against_a_live_run() {
        let set = hotpath::run_overhead(40, 1);
        let off = set[0].clone();
        // Bands wide open: this verifies the measurement plumbing and
        // the deterministic metrics, not wall-clock noise.
        let tol = Tolerances {
            throughput_floor: 0.0,
            overhead_slack: f64::INFINITY,
        };
        let report = run_gate(&off, &set, 1, tol, 3.0).unwrap();
        assert_eq!(report.inject, 3.0);
        for c in &report.checks {
            if c.band == "exact" {
                assert!(c.pass, "structure check {} drifted", c.metric);
            }
        }
        assert!(report.passed);
    }
}
