//! Traffic concentration at the shared-tree root (§I / §V).
//!
//! The paper's motivation for powerful m-routers: "the ST-based approach
//! may cause traffic jam around the core, since packets from multiple
//! sources may reach the core simultaneously. The traffic concentration
//! will further cause the problems of packet loss and longer
//! communication delay" — and its answer: "the m-routers in the new
//! architecture are specially designed powerful routers to efficiently
//! handle heavy network traffic, which can greatly alleviate the
//! problem" (§V item 3).
//!
//! This experiment turns on the simulator's finite link-capacity model
//! and slams the shared tree with simultaneous bursts from many
//! sources, comparing an *ordinary* root (core-grade line rate) against
//! an *m-router* root (fast fabric ports). Measured: congestion drops,
//! queueing delay and end-to-end delay.

use scmp_core::router::ScmpConfig;
use scmp_net::graph::LinkWeight;
use scmp_net::topology::regular::star;
use scmp_net::NodeId;
use scmp_protocols::build_scmp_engine;
use scmp_sim::{AppEvent, CapacityModel, GroupId, SimStats};
use serde::Serialize;

const G: GroupId = GroupId(1);
/// Per-packet serialisation time on an ordinary line card.
const ORDINARY_TX: u64 = 2_000;
/// Per-packet serialisation time on the m-router's fabric ports.
const MROUTER_TX: u64 = 100;
/// Queue slots per link direction.
const QUEUE_LIMIT: u64 = 8;

/// One averaged data point.
#[derive(Clone, Debug, Serialize)]
pub struct ConcentrationPoint {
    /// "ordinary-core" or "m-router".
    pub root_kind: String,
    /// Number of simultaneous burst sources.
    pub sources: usize,
    /// Congestion (queue-overflow) drops.
    pub queue_drops: f64,
    /// Largest queueing wait (ticks).
    pub max_queueing_delay: f64,
    /// Max end-to-end delay (ticks).
    pub max_e2e_delay: f64,
    /// Fraction of (packet, member) deliveries that arrived.
    pub delivery_rate: f64,
}

/// Number of group members (leaf DRs of the star).
const MEMBERS: usize = 12;
/// Packets per burst source.
const PER_SOURCE: u64 = 5;

/// The distilled §I hotspot: a star domain whose hub is the tree root.
/// Every source's flow converges on the hub and fans out to every
/// member leaf, so the hub's egress ports are the only congestible
/// inner hops — exactly the "traffic jam around the core" scenario.
/// (`seed` shifts which leaves send, exercising different port sets.)
fn run_once(sources: usize, fast_root: bool, seed: u64) -> SimStats {
    let n = 1 + MEMBERS + sources.max(1);
    let topo = star(n, LinkWeight::new(50, 10));
    let center = NodeId(0);
    let mut e = build_scmp_engine(topo.clone(), ScmpConfig::new(center));
    let mut cap = CapacityModel::uniform(ORDINARY_TX, QUEUE_LIMIT);
    if fast_root {
        cap = cap.with_node_tx(center, MROUTER_TX);
    }
    e.set_capacity(cap);
    let members: Vec<NodeId> = (1..=MEMBERS as u32).map(NodeId).collect();
    let senders: Vec<NodeId> = (MEMBERS as u32 + 1..n as u32).map(NodeId).collect();
    let mut t = 0;
    for &m in &members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 2_000;
    }
    // Simultaneous bursts from the off-tree sources: everything funnels
    // through the hub via encapsulation.
    let burst_at = t + 1_000_000 + seed; // seed staggers the burst phase
    let mut tag = 0;
    for &s in &senders {
        for _ in 0..PER_SOURCE {
            tag += 1;
            e.schedule_app(burst_at, s, AppEvent::Send { group: G, tag });
        }
    }
    e.run_to_quiescence();
    e.stats().clone()
}

/// Run the sweep over burst-source counts for both root kinds.
pub fn run(seeds: u64) -> Vec<ConcentrationPoint> {
    let mut out = Vec::new();
    for &sources in &[2usize, 4, 8, 12] {
        for fast_root in [false, true] {
            let mut drops = Vec::new();
            let mut qd = Vec::new();
            let mut e2e = Vec::new();
            let mut rate = Vec::new();
            for seed in 0..seeds {
                let stats = run_once(sources, fast_root, seed);
                drops.push(stats.queue_drops as f64);
                qd.push(stats.max_queueing_delay as f64);
                e2e.push(stats.max_end_to_end_delay as f64);
                let expected = (sources as u64 * PER_SOURCE * MEMBERS as u64) as f64;
                rate.push(stats.distinct_deliveries() as f64 / expected);
            }
            out.push(ConcentrationPoint {
                root_kind: if fast_root {
                    "m-router"
                } else {
                    "ordinary-core"
                }
                .to_string(),
                sources,
                queue_drops: crate::report::mean(&drops),
                max_queueing_delay: crate::report::mean(&qd),
                max_e2e_delay: crate::report::mean(&e2e),
                delivery_rate: crate::report::mean(&rate),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_router_alleviates_concentration() {
        let pts = run(3);
        for sources in [8usize, 12] {
            let ordinary = pts
                .iter()
                .find(|p| p.sources == sources && p.root_kind == "ordinary-core")
                .unwrap();
            let mrouter = pts
                .iter()
                .find(|p| p.sources == sources && p.root_kind == "m-router")
                .unwrap();
            assert!(
                mrouter.delivery_rate >= ordinary.delivery_rate,
                "{sources} sources: m-router {mrouter:?} vs {ordinary:?}"
            );
            assert!(
                mrouter.queue_drops <= ordinary.queue_drops,
                "{sources} sources: m-router drops {} > ordinary {}",
                mrouter.queue_drops,
                ordinary.queue_drops
            );
        }
        // At high load the ordinary core actually suffers (drops or
        // serious queueing) while the m-router keeps the loss lower.
        let worst_ord = pts
            .iter()
            .filter(|p| p.root_kind == "ordinary-core")
            .map(|p| p.queue_drops)
            .fold(0.0f64, f64::max);
        let worst_m = pts
            .iter()
            .filter(|p| p.root_kind == "m-router")
            .map(|p| p.queue_drops)
            .fold(0.0f64, f64::max);
        assert!(
            worst_m <= worst_ord,
            "m-router {worst_m} > ordinary {worst_ord}"
        );
    }
}
