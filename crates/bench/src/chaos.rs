//! Chaos sweep: protocol invariants and delivery degradation under
//! seeded uniform packet loss.
//!
//! PR 1's fault experiments cut links cleanly; this sweep stresses the
//! control plane the other way — every link stays up but drops each
//! packet with probability `loss`. The hardened protocol (JOIN/LEAVE
//! retransmission, TREE/BRANCH ACKs, heartbeat loss tolerance,
//! receiver-side dedup) must keep its safety invariants at every loss
//! rate while delivery degrades gracefully:
//!
//! 1. **No duplicate delivery** — channel duplication plus control
//!    retransmission must never hand a `(group, tag)` payload to the
//!    same member twice (checked by the telemetry delivery audit).
//! 2. **Eventual tree convergence** — every member's JOIN eventually
//!    grafts it onto the tree despite lost control packets, observed as
//!    every member hearing at least one of the post-convergence
//!    payloads (at the sweep's loss rates).
//! 3. **No spurious takeover** — the scenarios crash nobody, so the
//!    standby must never promote itself: its loss tolerance (12
//!    consecutive heartbeats on a one-hop heartbeat path) puts a false
//!    promotion far below the takeover threshold at every loss rate.
//! 4. **Lossless baseline is perfect** — at `loss = 0` the channel
//!    model is inert: full delivery, zero channel drops, zero
//!    retransmissions.
//!
//! Cells run on [`run_batch`], so the whole sweep is byte-identical
//! across `--jobs 1` and `--jobs N` (the `chaos` binary re-checks this
//! whenever it runs parallel).
//!
//! A second, partition series drives the correlated
//! [`Partition`](scmp_sim::FaultKind::Partition) fault family instead
//! of uniform loss: a seeded graph cut strands part of the domain
//! mid-session and heals later. Each cell must **reconverge within a
//! bounded window** ([`RECONVERGE_WINDOW`] ticks after the heal),
//! deliver every post-heal payload to at least 99% of the member set,
//! end with **exactly one** live m-router (the PR 5 generation epochs
//! resolve dual roots deterministically — no split brain), and deliver
//! nothing twice.

use crate::scenario_file::run_batch;
use scmp_telemetry::{EventKind, Trace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Uniform per-link drop probabilities swept.
pub const LOSS_RATES: &[f64] = &[0.0, 0.05, 0.10, 0.15, 0.20];

/// Member DRs joining group 1 — ARPANET nodes that stay within three
/// hops of the m-router (node 10) for every weight seed, so a bounded
/// retry budget genuinely guarantees convergence (a 15% per-link loss
/// compounds to ~86% per packet on the 12-hop paths a random Waxman
/// throws up — no bounded ARQ survives that).
const MEMBERS: &[u32] = &[3, 6, 7, 8, 9, 14, 15, 17];

/// Off-tree source DR (exercises the encapsulation path).
const SOURCE: u32 = 13;

/// Payloads sent after the convergence window. Data has no ARQ, so the
/// convergence proxy (every member hears ≥ 1 payload) needs enough
/// independent tries to be sound at the swept loss rates.
const SENDS: u64 = 20;

/// When the partition series cuts the domain, and when it heals.
pub const PARTITION_AT: u64 = 60_000;
/// Absolute heal time of the partition series' cut.
pub const HEAL_AT: u64 = 160_000;
/// Reconvergence bound: every post-heal reconciliation must land
/// within this many ticks of the heal (five repair-scan periods).
pub const RECONVERGE_WINDOW: u64 = 10_000;
/// Payloads sent before the cut / during the partition / after the
/// heal-plus-window in the partition series.
const PRE_SENDS: u64 = 4;
const MID_SENDS: u64 = 4;
const POST_SENDS: u64 = 12;

/// One sweep cell: a `(loss, seed)` realisation on the fig-scale
/// ARPANET topology, with or without the reliable-multicast tier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Uniform drop probability on every link.
    pub loss: f64,
    /// Channel + topology seed for this realisation.
    pub seed: u64,
    /// Whether the reliability tier (NACK recovery) was on.
    pub reliable: bool,
    /// Fraction of expected `(tag, member)` deliveries that arrived.
    pub delivery_ratio: f64,
    /// Members that heard at least one payload (tree-convergence proxy).
    pub members_reached: usize,
    /// Packets the channel ate.
    pub channel_dropped: u64,
    /// Control packets retransmitted to get through.
    pub retransmissions: u64,
    /// Tree repairs performed by the m-router scan.
    pub repairs: u64,
    /// Standby promotions (must stay 0 — nobody crashes).
    pub takeovers: u64,
    /// Duplicate `(group, tag, member)` deliveries (must stay 0).
    pub duplicate_deliveries: usize,
    /// NACKs originated by receivers (0 with the tier off).
    pub nacks_sent: u64,
    /// NACKs absorbed by pending-request suppression.
    pub nacks_suppressed: u64,
    /// NACKs forwarded upstream after a cache miss.
    pub nacks_forwarded: u64,
    /// NACKs answered from a repair cache.
    pub repair_cache_hits: u64,
    /// NACKs that missed a repair cache.
    pub repair_cache_misses: u64,
    /// Data gaps closed by the tier.
    pub recoveries: u64,
    /// Gap-recovery latency percentiles (0 when nothing recovered).
    pub p50_recovery_latency: u64,
    pub p99_recovery_latency: u64,
}

/// Per-loss-rate aggregate over seeds — the degradation curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosPoint {
    /// Uniform drop probability.
    pub loss: f64,
    /// Mean delivery ratio across seeds.
    pub mean_delivery_ratio: f64,
    /// Worst-seed delivery ratio.
    pub min_delivery_ratio: f64,
    /// Mean retransmissions across seeds.
    pub mean_retransmissions: f64,
    /// Total takeovers across seeds (invariant: 0).
    pub takeovers: u64,
    /// Mean NACKs per seed (reliable curve; 0 on the plain curve).
    pub mean_nacks: f64,
    /// NACKs suppressed / NACKs seen at routers — the duplicate-NACK
    /// suppression effectiveness (0 when no NACK ever reached a router).
    pub nack_suppression_ratio: f64,
    /// Repair-cache hits / lookups across seeds (NACK-implosion
    /// containment: every hit stops a NACK from travelling further).
    pub cache_hit_rate: f64,
    /// Mean per-seed p50 gap-recovery latency.
    pub mean_recovery_p50: f64,
    /// Worst per-seed p99 gap-recovery latency.
    pub max_recovery_p99: u64,
}

/// One partition-series cell: a seeded graph cut at [`PARTITION_AT`]
/// healed at [`HEAL_AT`] on a lossless channel, so every number below
/// is attributable to the partition alone.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosPartitionCell {
    /// Cut seed (also the ARPANET weight seed).
    pub seed: u64,
    /// Group members the m-router saw stranded on the far side (0 when
    /// the seeded cut left every member on the m-router's side).
    pub members_stranded: u32,
    /// Repair-scan ticks spent in partition-degraded mode.
    pub degraded_ticks: u64,
    /// Post-heal tree reconciliations (stranded members readopted).
    pub reconciliations: u64,
    /// Last reconciliation's lag behind the heal (0 when nothing needed
    /// reconciling). Bounded by [`RECONVERGE_WINDOW`].
    pub reconverge_ticks: u64,
    /// Fraction of post-heal `(tag, member)` deliveries that arrived.
    pub post_heal_delivery: f64,
    /// Standby promotions (1 when the cut separated standby from
    /// primary for longer than the watchdog tolerance).
    pub takeovers: u64,
    /// Live m-router claimants at the end — exactly one, always.
    pub m_routers_at_end: Vec<u32>,
    /// Duplicate `(group, tag, member)` deliveries (must stay 0).
    pub duplicate_deliveries: usize,
}

/// Partition-series aggregate — the numbers the regression gate bands.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosPartitionSummary {
    /// Absolute heal time shared by every cell.
    pub heal_at: u64,
    /// The reconvergence bound every cell was held to.
    pub window: u64,
    /// Cells run.
    pub cells: u64,
    /// Cells whose cut actually stranded members.
    pub stranded_cells: u64,
    /// Cells whose cut forced a standby takeover (dual-root geometry).
    pub takeover_cells: u64,
    /// Worst reconciliation lag behind the heal across cells.
    pub max_reconverge_ticks: u64,
    /// Worst post-heal delivery across cells.
    pub min_post_heal_delivery: f64,
}

/// The full sweep result persisted to `bench_results/chaos.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Seeds per loss rate.
    pub seeds: u64,
    /// Degradation curve with the reliability tier off.
    pub points: Vec<ChaosPoint>,
    /// The same curve with NACK recovery on.
    pub reliable_points: Vec<ChaosPoint>,
    /// Every raw cell, the tier-off series first.
    pub cells: Vec<ChaosCell>,
    /// Partition-and-heal series aggregate (absent in pre-partition
    /// baselines).
    #[serde(default)]
    pub partition: Option<ChaosPartitionSummary>,
    /// Every partition-series cell.
    #[serde(default)]
    pub partition_cells: Vec<ChaosPartitionCell>,
}

/// The sweep scenario: the paper's ARPANET map (seeded weights), eight
/// members joining early, twenty payloads sent long after the control
/// plane converged, full robustness suite on (repair scan,
/// JOIN/LEAVE/TREE retry, hot standby with a loss-tolerant watchdog),
/// uniform loss on every link.
pub fn scenario_json(loss: f64, seed: u64) -> String {
    scenario_json_with(loss, seed, false)
}

/// Like [`scenario_json`], optionally with the reliable-multicast tier
/// on (defaults: 300-tick NACK delay, 200-tick jitter window, 64 KiB
/// repair caches, sequence-extent announcements for tail loss).
pub fn scenario_json_with(loss: f64, seed: u64, reliable: bool) -> String {
    let mut events = String::new();
    for (i, m) in MEMBERS.iter().enumerate() {
        events.push_str(&format!(
            "    {{ \"time\": {}, \"node\": {m}, \"op\": \"join\", \"group\": 1 }},\n",
            i as u64 * 500
        ));
    }
    for k in 0..SENDS {
        events.push_str(&format!(
            "    {{ \"time\": {}, \"node\": {SOURCE}, \"op\": \"send\", \"group\": 1, \"tag\": {} }}{}",
            150_000 + k * 2_000,
            k + 1,
            if k + 1 == SENDS { "\n" } else { ",\n" }
        ));
    }
    // Timescales follow the topology: ARPANET one-way delays stay under
    // ~100 ticks, so a 500-tick retry base comfortably exceeds the
    // worst JOIN→TREE round trip (a lossless run must never retransmit)
    // while the exponential backoff budget — eight retries, factor
    // capped at 64 — exhausts within ~100k ticks, well before the first
    // payload. The standby (node 11) sits one hop from the m-router
    // (node 10), so twelve consecutive heartbeat losses at 20% per link
    // is a ~4e-9 event: any takeover the sweep observes is a bug.
    let reliability = if reliable {
        "\n  \"reliability\": {},"
    } else {
        ""
    };
    format!(
        r#"{{
  "topology": {{ "kind": "arpanet", "seed": {seed} }},
  "m_router": 10,{reliability}
  "robustness": {{
    "repair_interval": 2000,
    "join_retry": 500,
    "leave_retry": 500,
    "tree_retry": 500,
    "heartbeat_interval": 1000,
    "standby": 11,
    "heartbeat_loss_tolerance": 12
  }},
  "channel": {{ "seed": {seed}, "default": {{ "drop": {loss} }} }},
  "events": [
{events}  ],
  "run_until": 250000
}}"#
    )
}

/// The partition-series scenario: same ARPANET membership as the loss
/// sweep on a lossless channel, with a seeded [`Partition`] family cut
/// at [`PARTITION_AT`] healing at [`HEAL_AT`]. Sends bracket the cut:
/// [`PRE_SENDS`] after convergence, [`MID_SENDS`] mid-partition (the
/// stranded side is *expected* to miss these), and [`POST_SENDS`]
/// starting [`RECONVERGE_WINDOW`] after the heal, which reconciliation
/// must deliver in full.
///
/// [`Partition`]: scmp_sim::FaultKind::Partition
pub fn partition_scenario_json(seed: u64) -> String {
    let mut events = String::new();
    for (i, m) in MEMBERS.iter().enumerate() {
        events.push_str(&format!(
            "    {{ \"time\": {}, \"node\": {m}, \"op\": \"join\", \"group\": 1 }},\n",
            i as u64 * 500
        ));
    }
    let mut tag = 0u64;
    let mut send_at = |events: &mut String, time: u64, last: bool| {
        tag += 1;
        events.push_str(&format!(
            "    {{ \"time\": {time}, \"node\": {SOURCE}, \"op\": \"send\", \"group\": 1, \"tag\": {tag} }}{}",
            if last { "\n" } else { ",\n" }
        ));
    };
    for k in 0..PRE_SENDS {
        send_at(&mut events, 40_000 + k * 2_000, false);
    }
    for k in 0..MID_SENDS {
        send_at(&mut events, 100_000 + k * 2_000, false);
    }
    for k in 0..POST_SENDS {
        send_at(
            &mut events,
            HEAL_AT + RECONVERGE_WINDOW + k * 2_000,
            k + 1 == POST_SENDS,
        );
    }
    format!(
        r#"{{
  "topology": {{ "kind": "arpanet", "seed": {seed} }},
  "m_router": 10,
  "robustness": {{
    "repair_interval": 2000,
    "join_retry": 500,
    "leave_retry": 500,
    "tree_retry": 500,
    "heartbeat_interval": 1000,
    "standby": 11,
    "heartbeat_loss_tolerance": 12,
    "takeover_rebuild_delay": 500
  }},
  "faults": [
    {{ "time": {PARTITION_AT}, "fault": {{ "kind": "partition", "seed": {seed}, "heal_at": {HEAL_AT} }} }}
  ],
  "events": [
{events}  ],
  "run_until": 250000
}}"#
    )
}

/// Run the sweep: `LOSS_RATES` × `seeds` cells, each in both modes
/// (reliability off, then on), on `jobs` workers.
///
/// # Panics
/// When any invariant listed in the module docs is violated, or when
/// the reliable series misses its recovery floors (min delivery ≥ 0.95
/// at 10% loss, ≥ 0.85 at 20%).
pub fn run(seeds: u64, jobs: usize) -> ChaosReport {
    let grid: Vec<(f64, u64, bool)> = [false, true]
        .iter()
        .flat_map(|&reliable| {
            LOSS_RATES
                .iter()
                .flat_map(move |&loss| (0..seeds).map(move |s| (loss, s, reliable)))
        })
        .collect();
    let jsons: Vec<String> = grid
        .iter()
        .map(|&(loss, seed, reliable)| scenario_json_with(loss, seed, reliable))
        .collect();
    let outcomes = run_batch(&jsons, jobs);

    let mut cells = Vec::with_capacity(grid.len());
    for (&(loss, seed, reliable), outcome) in grid.iter().zip(&outcomes) {
        let tag = format!("(loss={loss}, seed={seed}, reliable={reliable})");
        let (r, trace) = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("chaos cell {tag} failed: {e}"));
        let t = Trace::parse(trace).unwrap_or_else(|e| panic!("chaos cell {tag} trace: {e}"));
        let audit = t.audit();
        let reached: BTreeSet<u32> = t
            .events()
            .iter()
            .filter(|ev| matches!(ev.kind, EventKind::DeliverLocal { .. }))
            .map(|ev| ev.node)
            .collect();
        let cell = ChaosCell {
            loss,
            seed,
            reliable,
            delivery_ratio: r.delivery_ratio,
            members_reached: reached.len(),
            channel_dropped: r.channel_dropped,
            retransmissions: r.retransmissions,
            repairs: r.repairs,
            takeovers: r.takeovers,
            duplicate_deliveries: audit.duplicates.len(),
            nacks_sent: r.nacks_sent,
            nacks_suppressed: r.nacks_suppressed,
            nacks_forwarded: r.nacks_forwarded,
            repair_cache_hits: r.repair_cache_hits,
            repair_cache_misses: r.repair_cache_misses,
            recoveries: r.recoveries,
            p50_recovery_latency: r.p50_recovery_latency,
            p99_recovery_latency: r.p99_recovery_latency,
        };
        assert!(
            audit.duplicates.is_empty(),
            "{tag}: duplicate deliveries {:?}",
            audit.duplicates
        );
        assert!(
            audit.unaccounted.is_empty(),
            "{tag}: {} deliveries lost without any recorded drop",
            audit.unaccounted.len()
        );
        assert_eq!(cell.takeovers, 0, "{tag}: spurious standby takeover");
        if loss <= 0.15 {
            assert_eq!(
                cell.members_reached,
                MEMBERS.len(),
                "{tag}: tree never converged for some member"
            );
        }
        if loss == 0.0 {
            assert_eq!(cell.delivery_ratio, 1.0, "{tag}: lossless run not perfect");
            assert_eq!(cell.channel_dropped, 0, "{tag}: inert channel dropped");
            assert_eq!(cell.retransmissions, 0, "{tag}: lossless run retried");
            assert_eq!(cell.nacks_sent, 0, "{tag}: lossless run NACKed");
        } else {
            assert!(cell.channel_dropped > 0, "{tag}: channel never dropped");
        }
        if reliable {
            if loss > 0.0 {
                assert!(
                    cell.recoveries > 0,
                    "{tag}: lossy run never recovered a gap"
                );
            }
            // The tentpole's acceptance floors: NACK recovery must hold
            // delivery high where the best-effort tier visibly degrades.
            if loss <= 0.10 {
                assert!(
                    cell.delivery_ratio >= 0.95,
                    "{tag}: reliable delivery {} under the 0.95 floor",
                    cell.delivery_ratio
                );
            } else {
                assert!(
                    cell.delivery_ratio >= 0.85,
                    "{tag}: reliable delivery {} under the 0.85 floor",
                    cell.delivery_ratio
                );
            }
        } else {
            assert_eq!(cell.nacks_sent, 0, "{tag}: tier-off run NACKed");
            assert_eq!(cell.recoveries, 0, "{tag}: tier-off run recovered");
        }
        cells.push(cell);
    }

    let aggregate = |reliable: bool| -> Vec<ChaosPoint> {
        LOSS_RATES
            .iter()
            .map(|&loss| {
                let mine: Vec<&ChaosCell> = cells
                    .iter()
                    .filter(|c| c.loss == loss && c.reliable == reliable)
                    .collect();
                let n = mine.len().max(1) as f64;
                let nacks_seen: u64 = mine
                    .iter()
                    .map(|c| c.nacks_suppressed + c.nacks_forwarded + c.repair_cache_hits)
                    .sum();
                let suppressed: u64 = mine.iter().map(|c| c.nacks_suppressed).sum();
                let lookups: u64 = mine
                    .iter()
                    .map(|c| c.repair_cache_hits + c.repair_cache_misses)
                    .sum();
                let hits: u64 = mine.iter().map(|c| c.repair_cache_hits).sum();
                ChaosPoint {
                    loss,
                    mean_delivery_ratio: mine.iter().map(|c| c.delivery_ratio).sum::<f64>() / n,
                    min_delivery_ratio: mine
                        .iter()
                        .map(|c| c.delivery_ratio)
                        .fold(f64::INFINITY, f64::min),
                    mean_retransmissions: mine
                        .iter()
                        .map(|c| c.retransmissions as f64)
                        .sum::<f64>()
                        / n,
                    takeovers: mine.iter().map(|c| c.takeovers).sum(),
                    mean_nacks: mine.iter().map(|c| c.nacks_sent as f64).sum::<f64>() / n,
                    nack_suppression_ratio: if nacks_seen == 0 {
                        0.0
                    } else {
                        suppressed as f64 / nacks_seen as f64
                    },
                    cache_hit_rate: if lookups == 0 {
                        0.0
                    } else {
                        hits as f64 / lookups as f64
                    },
                    mean_recovery_p50: mine
                        .iter()
                        .map(|c| c.p50_recovery_latency as f64)
                        .sum::<f64>()
                        / n,
                    max_recovery_p99: mine
                        .iter()
                        .map(|c| c.p99_recovery_latency)
                        .max()
                        .unwrap_or(0),
                }
            })
            .collect()
    };

    // Partition-and-heal series: one cell per seed, lossless, the cut
    // geometry varying with the seed (including dual-root geometries
    // where the standby is cut off from the primary and takes over).
    let (partition, partition_cells) = partition_series(seeds, jobs);

    ChaosReport {
        seeds,
        points: aggregate(false),
        reliable_points: aggregate(true),
        cells,
        partition: Some(partition),
        partition_cells,
    }
}

/// The partition-and-heal series alone: one cell per seed, every
/// per-cell invariant (no duplicates, single root, bounded
/// reconvergence, post-heal delivery floor) asserted. `run` embeds
/// this in the full report; the `chaos --partition-only` mode and
/// `just partition-chaos` call it directly.
pub fn partition_series(
    seeds: u64,
    jobs: usize,
) -> (ChaosPartitionSummary, Vec<ChaosPartitionCell>) {
    let pjsons: Vec<String> = (0..seeds).map(partition_scenario_json).collect();
    let poutcomes = run_batch(&pjsons, jobs);
    let mut partition_cells = Vec::with_capacity(pjsons.len());
    for (seed, outcome) in (0..seeds).zip(&poutcomes) {
        let tag = format!("(partition seed={seed})");
        let (r, trace) = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("partition cell {tag} failed: {e}"));
        let t = Trace::parse(trace).unwrap_or_else(|e| panic!("partition cell {tag} trace: {e}"));
        let audit = t.audit();
        let members_stranded = t
            .events()
            .iter()
            .filter_map(|ev| match ev.kind {
                EventKind::Partition { members, .. } => Some(members),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let reconverge_ticks = t
            .events()
            .iter()
            .filter(|ev| ev.time >= HEAL_AT && matches!(ev.kind, EventKind::Reconcile { .. }))
            .map(|ev| ev.time - HEAL_AT)
            .max()
            .unwrap_or(0);
        let post_tags = (PRE_SENDS + MID_SENDS + 1)..=(PRE_SENDS + MID_SENDS + POST_SENDS);
        let post_received: usize = r
            .deliveries
            .iter()
            .filter(|d| post_tags.contains(&d.tag))
            .map(|d| d.receivers)
            .sum();
        let cell = ChaosPartitionCell {
            seed,
            members_stranded,
            degraded_ticks: r.partition_degraded_ticks,
            reconciliations: r.reconciliations,
            reconverge_ticks,
            post_heal_delivery: post_received as f64 / (POST_SENDS as usize * MEMBERS.len()) as f64,
            takeovers: r.takeovers,
            m_routers_at_end: r.m_routers_at_end.clone(),
            duplicate_deliveries: audit.duplicates.len(),
        };
        assert!(
            audit.duplicates.is_empty(),
            "{tag}: duplicate deliveries {:?}",
            audit.duplicates
        );
        assert_eq!(
            cell.m_routers_at_end.len(),
            1,
            "{tag}: split brain or dead root survived the heal: {:?}",
            cell.m_routers_at_end
        );
        assert!(
            cell.degraded_ticks > 0,
            "{tag}: the scan never noticed the cut"
        );
        assert!(
            cell.reconverge_ticks <= RECONVERGE_WINDOW,
            "{tag}: reconciliation {} ticks after the heal exceeds the {RECONVERGE_WINDOW}-tick bound",
            cell.reconverge_ticks
        );
        assert!(
            cell.post_heal_delivery >= 0.99,
            "{tag}: post-heal delivery {} under the 0.99 floor",
            cell.post_heal_delivery
        );
        if cell.members_stranded > 0 {
            assert!(
                cell.reconciliations > 0,
                "{tag}: stranded members were never reconciled"
            );
        }
        partition_cells.push(cell);
    }
    let summary = ChaosPartitionSummary {
        heal_at: HEAL_AT,
        window: RECONVERGE_WINDOW,
        cells: partition_cells.len() as u64,
        stranded_cells: partition_cells
            .iter()
            .filter(|c| c.members_stranded > 0)
            .count() as u64,
        takeover_cells: partition_cells.iter().filter(|c| c.takeovers > 0).count() as u64,
        max_reconverge_ticks: partition_cells
            .iter()
            .map(|c| c.reconverge_ticks)
            .max()
            .unwrap_or(0),
        min_post_heal_delivery: partition_cells
            .iter()
            .map(|c| c.post_heal_delivery)
            .fold(f64::INFINITY, f64::min),
    };
    (summary, partition_cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_holds_invariants_and_is_jobs_invariant() {
        // One seed keeps the test fast; `run` itself asserts the
        // protocol invariants for every cell.
        let serial = run(1, 1);
        let parallel = run(1, 2);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "chaos sweep must be byte-identical across worker counts"
        );
        assert_eq!(serial.points.len(), LOSS_RATES.len());
        assert_eq!(serial.reliable_points.len(), LOSS_RATES.len());
        assert_eq!(serial.cells.len(), 2 * LOSS_RATES.len());
        assert_eq!(serial.points[0].mean_delivery_ratio, 1.0);
        let lossy = &serial.points[LOSS_RATES.len() - 1];
        assert!(
            lossy.mean_retransmissions > 0.0,
            "20% loss must force control retries"
        );
        // The reliable curve at the same loss rate must out-deliver the
        // best-effort curve and show the recovery machinery at work.
        let rel_lossy = &serial.reliable_points[LOSS_RATES.len() - 1];
        assert!(
            rel_lossy.min_delivery_ratio >= lossy.min_delivery_ratio,
            "NACK recovery made delivery worse at 20% loss"
        );
        assert!(rel_lossy.mean_nacks > 0.0, "reliable cells never NACKed");
        assert!(
            rel_lossy.cache_hit_rate > 0.0,
            "repair caches never answered a NACK at 20% loss"
        );
        assert_eq!(
            serial.points[LOSS_RATES.len() - 1].mean_nacks,
            0.0,
            "tier-off curve must show zero NACKs"
        );
        // Partition series: `run` itself asserts the per-cell bounds
        // (reconvergence window, 0.99 post-heal floor, single root, no
        // duplicates); here we check the series exists and aggregated.
        assert_eq!(serial.partition_cells.len(), 1);
        let p = serial.partition.as_ref().expect("partition summary");
        assert_eq!(p.cells, 1);
        assert_eq!(p.window, RECONVERGE_WINDOW);
        assert!(p.min_post_heal_delivery >= 0.99);
        assert!(p.max_reconverge_ticks <= RECONVERGE_WINDOW);
    }
}
