//! `scmp-bench` — run every experiment in sequence (the individual
//! binaries run one each).

use scmp_bench::{ablation, fig7, netperf, placement_exp, report};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("SCMP reproduction — full experiment suite ({seeds} seeds)");

    let f7 = fig7::run(&fig7::Fig7Config {
        seeds,
        ..Default::default()
    });
    report::write_json("fig7", &f7);

    let net = netperf::run_suite(seeds);
    report::write_json("fig8_fig9", &net);

    let pl = placement_exp::run(seeds);
    report::write_json("placement", &pl);

    let ab = ablation::run_branch(seeds);
    report::write_json("ablation_branch", &ab);
    let ap = ablation::run_paths(seeds);
    report::write_json("ablation_paths", &ap);

    println!("\nAll experiments complete; JSON in bench_results/.");
}
