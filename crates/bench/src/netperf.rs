//! Fig. 8 / Fig. 9 — network-wide protocol comparison on the simulator.
//!
//! §IV-B setup: three topologies (ARPANET; GT-ITM random, n = 50,
//! average degree 3; same with degree 5); one source sending one
//! multicast packet per "second" for 30 seconds; group size swept,
//! members picked randomly; metrics: data overhead, protocol overhead,
//! maximum end-to-end delay. SCMP's m-router and CBT's core sit on the
//! same (rule-1-placed) node; the source is an off-group node, matching
//! the paper's observation that shared-tree protocols pay a detour for
//! off-tree sources.

use crate::sweep::{resolve_jobs, SweepRunner};
use rand::seq::SliceRandom;
use rand::Rng;
use scmp_core::placement;
use scmp_net::rng::rng_for;
use scmp_net::topology::{arpanet, gt_itm_flat, GtItmConfig};
use scmp_net::{provider_for, NodeId, Topology};
use scmp_protocols::{build_engine, ProtocolParams};
use scmp_sim::{AppEvent, EngineRunner, GroupId, SimStats};
use scmp_telemetry::{Histogram, JsonlSink, SharedBuf};
use serde::Serialize;

/// The protocol registry's kind enum, re-exported under the name this
/// harness has always used. The Fig. 8/9 sweeps iterate
/// [`Protocol::FIG_8_9`]; [`Protocol::ALL`] additionally covers PIM-SM.
pub use scmp_protocols::ProtocolKind as Protocol;

/// One simulated "second" in engine ticks.
pub const SECOND: u64 = 50_000;
/// Number of data packets the source emits (paper: 30 s at 1 pkt/s).
pub const PACKETS: u64 = 30;

/// The three §IV-B topologies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum TopologyKind {
    /// Classic 20-node ARPANET (random link weights per seed).
    Arpanet,
    /// GT-ITM-like flat random, n = 50, average degree ≈ 3.
    Random50Deg3,
    /// GT-ITM-like flat random, n = 50, average degree ≈ 5.
    Random50Deg5,
}

impl TopologyKind {
    /// All three, in figure order.
    pub const ALL: [TopologyKind; 3] = [
        TopologyKind::Arpanet,
        TopologyKind::Random50Deg3,
        TopologyKind::Random50Deg5,
    ];

    /// Label used in output tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Arpanet => "arpanet",
            TopologyKind::Random50Deg3 => "random50-deg3",
            TopologyKind::Random50Deg5 => "random50-deg5",
        }
    }

    /// Build an instance for `seed`.
    pub fn build(self, seed: u64) -> Topology {
        let mut rng = rng_for(self.label(), seed);
        match self {
            TopologyKind::Arpanet => arpanet(&mut rng),
            TopologyKind::Random50Deg3 => gt_itm_flat(&GtItmConfig::paper(3.0), &mut rng),
            TopologyKind::Random50Deg5 => gt_itm_flat(&GtItmConfig::paper(5.0), &mut rng),
        }
    }

    /// Group sizes swept for this topology (ARPANET is only 20 nodes).
    pub fn group_sizes(self) -> Vec<usize> {
        match self {
            TopologyKind::Arpanet => vec![2, 4, 6, 8, 10, 12, 14, 16, 18],
            _ => vec![5, 10, 15, 20, 25, 30, 35, 40],
        }
    }
}

/// Raw metrics of one simulation run.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RunMetrics {
    /// Σ link-cost of data packet hops.
    pub data_overhead: u64,
    /// Σ link-cost of control packet hops.
    pub protocol_overhead: u64,
    /// Median end-to-end delay over first deliveries (ticks).
    pub p50_e2e_delay: u64,
    /// 99th-percentile end-to-end delay (ticks).
    pub p99_e2e_delay: u64,
    /// Max end-to-end delay over all deliveries (ticks).
    pub max_e2e_delay: u64,
    /// Every member received every packet exactly once.
    pub all_delivered: bool,
}

/// One averaged data point across seeds.
#[derive(Clone, Debug, Serialize)]
pub struct NetPoint {
    pub topology: String,
    pub protocol: String,
    pub group_size: usize,
    pub data_overhead: f64,
    pub protocol_overhead: f64,
    pub p50_e2e_delay: f64,
    pub p99_e2e_delay: f64,
    pub max_e2e_delay: f64,
    /// Fraction of seeds with perfect delivery (should be 1.0).
    pub delivery_ok: f64,
}

/// The concrete scenario of one run, drawn deterministically from
/// (topology kind, group size, seed).
pub struct Scenario {
    pub topo: Topology,
    pub center: NodeId,
    pub source: NodeId,
    pub members: Vec<NodeId>,
}

/// Build the scenario: center = placement rule 1 (min average delay),
/// members sampled from the remaining nodes, source a non-member.
///
/// The paper does not pin the source's location; we place it on a
/// non-member *neighbour* of the center. That keeps it off-tree (so the
/// shared-tree protocols pay the §IV-B.2 encapsulation detour and the
/// Fig. 9 delay gap appears) while keeping the detour itself short, as
/// implied by the paper's observation that "the data overhead is
/// strongly correlated to the multicast tree cost".
pub fn scenario(kind: TopologyKind, group_size: usize, seed: u64) -> Scenario {
    let topo = kind.build(seed);
    let paths = provider_for(&topo);
    let center = placement::min_average_delay(&topo, &paths);
    let mut rng = rng_for("netperf-members", seed ^ (group_size as u64) << 32);
    let mut pool: Vec<NodeId> = topo.nodes().filter(|&v| v != center).collect();
    pool.shuffle(&mut rng);
    let n = pool.len();
    let members: Vec<NodeId> = pool
        .iter()
        .copied()
        .take(group_size.min(n.saturating_sub(1)))
        .collect();
    // Source: a non-member neighbour of the center when one exists, else
    // any non-member, else a member (group saturates the topology).
    let source = topo
        .neighbors(center)
        .iter()
        .map(|e| e.to)
        .find(|v| !members.contains(v))
        .or_else(|| pool.iter().copied().find(|v| !members.contains(v)))
        .unwrap_or_else(|| {
            let i = rng.gen_range(0..members.len());
            members[i]
        });
    Scenario {
        topo,
        center,
        source,
        members,
    }
}

const GROUP: GroupId = GroupId(1);

/// Drive a scenario on any protocol's engine: staggered joins, a settle
/// gap, then the 30-packet data phase.
fn drive(e: &mut dyn EngineRunner, sc: &Scenario) {
    let mut t = 0;
    for &m in &sc.members {
        e.schedule_app(t, m, AppEvent::Join(GROUP));
        t += 2_000;
    }
    let start = t + 4 * SECOND;
    for k in 0..PACKETS {
        e.schedule_app(
            start + k * SECOND,
            sc.source,
            AppEvent::Send {
                group: GROUP,
                tag: k + 1,
            },
        );
    }
    e.run_to_quiescence();
}

fn check_delivery(stats: &SimStats, sc: &Scenario) -> bool {
    sc.members
        .iter()
        .all(|&m| (1..=PACKETS).all(|tag| stats.delivery_count(GROUP, tag, m) == 1))
}

/// One fully independent sweep cell of the Fig. 8/9 matrix. Everything
/// a cell touches — topology, member draw, engine — derives from these
/// four fields via `rng_for(label, seed)` streams, which is what lets
/// the [`SweepRunner`] execute cells in any interleaving and still
/// merge byte-identical output.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    pub kind: TopologyKind,
    pub proto: Protocol,
    pub group_size: usize,
    pub seed: u64,
}

/// The full Fig. 8/9 matrix in its fixed fold order:
/// topology → group size → protocol → seed.
pub fn suite_cells(seeds: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for kind in TopologyKind::ALL {
        for group_size in kind.group_sizes() {
            for proto in Protocol::FIG_8_9 {
                for seed in 0..seeds {
                    cells.push(Cell {
                        kind,
                        proto,
                        group_size,
                        seed,
                    });
                }
            }
        }
    }
    cells
}

/// Everything one cell produces: the scalar metrics, the cell's own
/// end-to-end delay histogram (merged across seeds by the fold instead
/// of re-bucketed), and — when tracing — the cell's JSONL fragment.
pub struct CellOutcome {
    pub metrics: RunMetrics,
    pub e2e_hist: Histogram,
    pub jsonl: String,
}

/// Run one cell in isolation. Construction is delegated to the
/// protocol registry; this harness only drives. With `trace` set, the
/// engine streams its structured events into an in-memory JSONL buffer
/// returned alongside the metrics (one buffer per cell — workers never
/// share a writer).
pub fn run_cell(cell: Cell, trace: bool) -> CellOutcome {
    let sc = scenario(cell.kind, cell.group_size, cell.seed);
    let params = ProtocolParams {
        center: sc.center,
        dvmrp_prune_timeout: 10 * SECOND,
    };
    let mut e = build_engine(cell.proto, &sc.topo, &params);
    let buf = trace.then(SharedBuf::new);
    if let Some(buf) = &buf {
        e.set_sink(Box::new(JsonlSink::new(buf.clone())));
    }
    drive(e.as_mut(), &sc);
    e.flush_telemetry();
    let stats = e.stats();
    let metrics = RunMetrics {
        data_overhead: stats.data_overhead,
        protocol_overhead: stats.protocol_overhead,
        p50_e2e_delay: stats.e2e_delay_hist.p50(),
        p99_e2e_delay: stats.e2e_delay_hist.p99(),
        max_e2e_delay: stats.max_end_to_end_delay,
        all_delivered: check_delivery(stats, &sc),
    };
    CellOutcome {
        metrics,
        e2e_hist: stats.e2e_delay_hist.clone(),
        jsonl: buf.map(|b| b.take_string()).unwrap_or_default(),
    }
}

/// Run one (topology, protocol, group size, seed) cell and return its
/// scalar metrics.
pub fn run_one(kind: TopologyKind, proto: Protocol, group_size: usize, seed: u64) -> RunMetrics {
    run_cell(
        Cell {
            kind,
            proto,
            group_size,
            seed,
        },
        false,
    )
    .metrics
}

/// A full suite's output: the averaged figure points plus, when traced,
/// every cell's JSONL fragment concatenated in cell order.
pub struct SuiteOutput {
    pub points: Vec<NetPoint>,
    pub jsonl: String,
}

/// Full sweep on an explicit worker count: every topology × group size
/// × protocol × seed cell fans out to the pool, and the fold walks the
/// results in the fixed cell order — so any `jobs` value produces
/// byte-identical points (and, with `trace`, a byte-identical
/// concatenated JSONL document) to `jobs = 1`.
///
/// Per-point aggregation: overheads and the per-run delay maximum are
/// seed means (the paper's Fig. 8/9 statistics); p50/p99 come from the
/// seed histograms folded with [`Histogram::merge`] — pooling the
/// actual delivery samples instead of averaging per-seed quantile
/// estimates.
pub fn run_suite_jobs(seeds: u64, jobs: usize, trace: bool) -> SuiteOutput {
    let cells = suite_cells(seeds);
    let runner = SweepRunner::new(jobs);
    let outcomes = runner.run(&cells, |_, &cell| run_cell(cell, trace));

    let mut points = Vec::new();
    let mut jsonl = String::new();
    for group in outcomes.chunks(seeds.max(1) as usize) {
        let cell = {
            // chunks() follows suite_cells' fixed order: one chunk per
            // (kind, group size, protocol), `seeds` cells each.
            let first = points.len() * seeds.max(1) as usize;
            cells[first]
        };
        let metrics: Vec<&RunMetrics> = group.iter().map(|o| &o.metrics).collect();
        let mut pooled = Histogram::new();
        for o in group {
            pooled.merge(&o.e2e_hist);
        }
        for o in group {
            jsonl.push_str(&o.jsonl);
        }
        let mean_of = |f: &dyn Fn(&RunMetrics) -> f64| {
            crate::report::mean(&metrics.iter().map(|m| f(m)).collect::<Vec<_>>())
        };
        points.push(NetPoint {
            topology: cell.kind.label().to_string(),
            protocol: cell.proto.label().to_string(),
            group_size: cell.group_size,
            data_overhead: mean_of(&|m| m.data_overhead as f64),
            protocol_overhead: mean_of(&|m| m.protocol_overhead as f64),
            p50_e2e_delay: pooled.p50() as f64,
            p99_e2e_delay: pooled.p99() as f64,
            max_e2e_delay: mean_of(&|m| m.max_e2e_delay as f64),
            delivery_ok: mean_of(&|m| if m.all_delivered { 1.0 } else { 0.0 }),
        });
    }
    SuiteOutput { points, jsonl }
}

/// Full sweep with the worker count taken from `SCMP_JOBS` / the
/// machine's core count (see [`resolve_jobs`]).
pub fn run_suite(seeds: u64) -> Vec<NetPoint> {
    run_suite_jobs(seeds, resolve_jobs(None), false).points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_deliver_on_arpanet() {
        for proto in Protocol::ALL {
            let m = run_one(TopologyKind::Arpanet, proto, 6, 0);
            assert!(m.all_delivered, "{proto:?} lost packets: {m:?}");
            assert!(m.data_overhead > 0);
        }
    }

    #[test]
    fn dvmrp_has_highest_data_overhead() {
        let dvmrp = run_one(TopologyKind::Arpanet, Protocol::Dvmrp, 4, 1);
        let scmp = run_one(TopologyKind::Arpanet, Protocol::Scmp, 4, 1);
        let cbt = run_one(TopologyKind::Arpanet, Protocol::Cbt, 4, 1);
        assert!(
            dvmrp.data_overhead > scmp.data_overhead,
            "{dvmrp:?} vs {scmp:?}"
        );
        assert!(dvmrp.data_overhead > cbt.data_overhead);
    }

    #[test]
    fn mospf_has_high_protocol_overhead() {
        let mospf = run_one(TopologyKind::Arpanet, Protocol::Mospf, 8, 2);
        let scmp = run_one(TopologyKind::Arpanet, Protocol::Scmp, 8, 2);
        let cbt = run_one(TopologyKind::Arpanet, Protocol::Cbt, 8, 2);
        assert!(mospf.protocol_overhead > scmp.protocol_overhead);
        assert!(mospf.protocol_overhead > cbt.protocol_overhead);
    }

    #[test]
    fn spt_protocols_have_lower_delay() {
        // SCMP/CBT detour via the center; MOSPF delivers source-rooted.
        let mospf = run_one(TopologyKind::Random50Deg3, Protocol::Mospf, 10, 3);
        let scmp = run_one(TopologyKind::Random50Deg3, Protocol::Scmp, 10, 3);
        assert!(
            mospf.max_e2e_delay <= scmp.max_e2e_delay,
            "{mospf:?} vs {scmp:?}"
        );
    }

    #[test]
    fn percentiles_are_ordered() {
        let m = run_one(TopologyKind::Arpanet, Protocol::Scmp, 6, 0);
        assert!(m.p50_e2e_delay > 0, "deliveries must yield a median");
        assert!(m.p50_e2e_delay <= m.p99_e2e_delay);
        assert!(m.p99_e2e_delay <= m.max_e2e_delay);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = scenario(TopologyKind::Random50Deg3, 10, 4);
        let b = scenario(TopologyKind::Random50Deg3, 10, 4);
        assert_eq!(a.members, b.members);
        assert_eq!(a.center, b.center);
        assert_eq!(a.source, b.source);
        assert_eq!(a.topo.edges(), b.topo.edges());
    }
}
