//! # scmp-bench — experiment harness
//!
//! One module per paper experiment; each binary in `src/bin/` prints the
//! corresponding figure's series and writes machine-readable JSON under
//! `bench_results/`.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig7` | Fig. 7(a–f): tree delay & cost vs group size, three delay-constraint levels |
//! | `fig8` | Fig. 8(a–f): data & protocol overhead vs group size, three topologies |
//! | `fig9` | Fig. 9(a–c): maximum end-to-end delay vs group size |
//! | `placement` | §IV-A m-router placement heuristics study |
//! | `ablation_branch` | BRANCH packets vs full TREE refresh on every join |
//! | `ablation_paths` | DCDM candidate set: P_lc ∪ P_sl vs P_lc-only vs P_sl-only |
//! | `concentration` | §I/§V traffic-concentration study: ordinary core vs powerful m-router under burst load |
//! | `extra_pimsm` | Beyond the paper: PIM-SM vs CBT vs SCMP (shared-tree trio) |
//! | `scale` | Beyond the paper: path-layer memory/latency curves at 1k–10k nodes, fig8/fig9-shaped run at 5k |

pub mod ablation;
pub mod chaos;
pub mod concentration;
pub mod extra_pimsm;
pub mod fig7;
pub mod hotpath;
pub mod netperf;
pub mod placement_exp;
pub mod plot;
pub mod regress;
pub mod report;
pub mod scale;
pub mod scenario_file;
pub mod stress;
pub mod sweep;
