//! §I/§V traffic-concentration study: simultaneous bursts through the
//! shared-tree root, ordinary core vs powerful m-router.

use scmp_bench::{concentration, report};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let points = concentration::run(seeds);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.root_kind.clone(),
                p.sources.to_string(),
                format!("{:.1}", p.queue_drops),
                format!("{:.0}", p.max_queueing_delay),
                format!("{:.0}", p.max_e2e_delay),
                format!("{:.3}", p.delivery_rate),
            ]
        })
        .collect();
    report::print_table(
        "Traffic concentration at the tree root (burst load)",
        &[
            "root",
            "sources",
            "queue_drops",
            "max_queue_wait",
            "max_e2e",
            "delivery_rate",
        ],
        &rows,
    );
    report::write_json("concentration", &points);
}
