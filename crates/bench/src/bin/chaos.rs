//! Chaos sweep: delivery degradation and protocol invariants under
//! seeded uniform packet loss (see `scmp_bench::chaos`).
//!
//! Usage: `chaos [seeds] [--jobs N] [--partition-only]` — defaults to
//! 3 seeds per loss rate. Writes `bench_results/chaos.json`. When
//! running parallel, the sweep is re-run serially and byte-compared as
//! a determinism guard. `--partition-only` runs just the
//! partition-and-heal series (per-cell invariants still asserted) and
//! leaves the committed baseline untouched.

use scmp_bench::sweep::{resolve_jobs, take_jobs_arg};
use scmp_bench::{chaos, report};

fn main() {
    let (rest, jobs_flag) = take_jobs_arg(std::env::args().skip(1).collect());
    let partition_only = rest.iter().any(|a| a == "--partition-only");
    let rest: Vec<String> = rest
        .into_iter()
        .filter(|a| a != "--partition-only")
        .collect();
    let seeds: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(3);
    let jobs = resolve_jobs(jobs_flag);

    if partition_only {
        let (summary, cells) = chaos::partition_series(seeds, jobs);
        if jobs > 1 {
            let serial = chaos::partition_series(seeds, 1);
            assert_eq!(
                serde_json::to_string(&(&summary, &cells)).unwrap(),
                serde_json::to_string(&(&serial.0, &serial.1)).unwrap(),
                "partition series diverged between --jobs {jobs} and serial"
            );
            println!("(determinism guard: --jobs {jobs} output byte-identical to serial)");
        }
        print_partition(&cells, &Some(summary));
        println!("\nall partition invariants held: zero split-brain, zero duplicate delivery, bounded reconvergence");
        return;
    }

    let rep = chaos::run(seeds, jobs);
    if jobs > 1 {
        let serial = chaos::run(seeds, 1);
        assert_eq!(
            serde_json::to_string(&rep).unwrap(),
            serde_json::to_string(&serial).unwrap(),
            "chaos sweep diverged between --jobs {jobs} and serial"
        );
        println!("(determinism guard: --jobs {jobs} output byte-identical to serial)");
    }

    let rows: Vec<Vec<String>> = rep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.loss * 100.0),
                format!("{:.3}", p.mean_delivery_ratio),
                format!("{:.3}", p.min_delivery_ratio),
                format!("{:.1}", p.mean_retransmissions),
                p.takeovers.to_string(),
            ]
        })
        .collect();
    report::print_table(
        &format!("Delivery degradation under uniform loss ({seeds} seeds per rate)"),
        &[
            "loss",
            "mean_delivery",
            "min_delivery",
            "mean_retx",
            "takeovers",
        ],
        &rows,
    );

    let rel_rows: Vec<Vec<String>> = rep
        .reliable_points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.loss * 100.0),
                format!("{:.3}", p.mean_delivery_ratio),
                format!("{:.3}", p.min_delivery_ratio),
                format!("{:.1}", p.mean_nacks),
                format!("{:.2}", p.nack_suppression_ratio),
                format!("{:.2}", p.cache_hit_rate),
                format!("{:.0}", p.mean_recovery_p50),
                p.max_recovery_p99.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "Same sweep with NACK recovery on (reliable tier)",
        &[
            "loss",
            "mean_delivery",
            "min_delivery",
            "mean_nacks",
            "suppression",
            "cache_hit",
            "p50_rec",
            "max_p99_rec",
        ],
        &rel_rows,
    );
    print_partition(&rep.partition_cells, &rep.partition);
    println!(
        "\nall invariants held: no duplicate delivery, every member grafted, no spurious takeover, single root after heal"
    );
    report::write_json("chaos", &rep);
}

fn print_partition(
    cells: &[chaos::ChaosPartitionCell],
    summary: &Option<chaos::ChaosPartitionSummary>,
) {
    let part_rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.seed.to_string(),
                c.members_stranded.to_string(),
                c.degraded_ticks.to_string(),
                c.takeovers.to_string(),
                c.reconciliations.to_string(),
                c.reconverge_ticks.to_string(),
                format!("{:.3}", c.post_heal_delivery),
            ]
        })
        .collect();
    report::print_table(
        &format!(
            "Partition-and-heal series (cut at {}, heal at {}, window {})",
            chaos::PARTITION_AT,
            chaos::HEAL_AT,
            chaos::RECONVERGE_WINDOW
        ),
        &[
            "seed",
            "stranded",
            "degraded",
            "takeovers",
            "reconciles",
            "reconverge",
            "post_heal",
        ],
        &part_rows,
    );
    if let Some(p) = summary {
        println!(
            "\npartition: {}/{} cells stranded members, {} took over; worst reconvergence {} ticks (window {}), min post-heal delivery {:.3}",
            p.stranded_cells, p.cells, p.takeover_cells, p.max_reconverge_ticks, p.window, p.min_post_heal_delivery
        );
    }
}
