//! Chaos sweep: delivery degradation and protocol invariants under
//! seeded uniform packet loss (see `scmp_bench::chaos`).
//!
//! Usage: `chaos [seeds] [--jobs N]` — defaults to 3 seeds per loss
//! rate. Writes `bench_results/chaos.json`. When running parallel, the
//! sweep is re-run serially and byte-compared as a determinism guard.

use scmp_bench::sweep::{resolve_jobs, take_jobs_arg};
use scmp_bench::{chaos, report};

fn main() {
    let (rest, jobs_flag) = take_jobs_arg(std::env::args().skip(1).collect());
    let seeds: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(3);
    let jobs = resolve_jobs(jobs_flag);

    let rep = chaos::run(seeds, jobs);
    if jobs > 1 {
        let serial = chaos::run(seeds, 1);
        assert_eq!(
            serde_json::to_string(&rep).unwrap(),
            serde_json::to_string(&serial).unwrap(),
            "chaos sweep diverged between --jobs {jobs} and serial"
        );
        println!("(determinism guard: --jobs {jobs} output byte-identical to serial)");
    }

    let rows: Vec<Vec<String>> = rep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.loss * 100.0),
                format!("{:.3}", p.mean_delivery_ratio),
                format!("{:.3}", p.min_delivery_ratio),
                format!("{:.1}", p.mean_retransmissions),
                p.takeovers.to_string(),
            ]
        })
        .collect();
    report::print_table(
        &format!("Delivery degradation under uniform loss ({seeds} seeds per rate)"),
        &[
            "loss",
            "mean_delivery",
            "min_delivery",
            "mean_retx",
            "takeovers",
        ],
        &rows,
    );

    let rel_rows: Vec<Vec<String>> = rep
        .reliable_points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.loss * 100.0),
                format!("{:.3}", p.mean_delivery_ratio),
                format!("{:.3}", p.min_delivery_ratio),
                format!("{:.1}", p.mean_nacks),
                format!("{:.2}", p.nack_suppression_ratio),
                format!("{:.2}", p.cache_hit_rate),
                format!("{:.0}", p.mean_recovery_p50),
                p.max_recovery_p99.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "Same sweep with NACK recovery on (reliable tier)",
        &[
            "loss",
            "mean_delivery",
            "min_delivery",
            "mean_nacks",
            "suppression",
            "cache_hit",
            "p50_rec",
            "max_p99_rec",
        ],
        &rel_rows,
    );
    println!(
        "\nall invariants held: no duplicate delivery, every member grafted, no spurious takeover"
    );
    report::write_json("chaos", &rep);
}
