//! Engine hot-path microbenchmark (see `scmp_bench::hotpath`).
//!
//! Usage: `engine_hotpath [sends] [reps]` — defaults 5000 payloads,
//! 3 repetitions. Writes `bench_results/engine_hotpath.json` (the
//! telemetry-off baseline) and `bench_results/telemetry_overhead.json`
//! (off vs ring vs jsonl sink comparison).

use scmp_bench::{hotpath, report};

fn main() {
    let mut args = std::env::args().skip(1);
    let sends: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5_000);
    let reps: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    // One interleaved pass measures all three sink modes; the off-mode
    // result doubles as the plain hot-path baseline.
    let all = hotpath::run_overhead(sends, reps);
    let result = all[0].clone();
    let rows: Vec<Vec<String>> = result
        .runs
        .iter()
        .map(|r| {
            vec![
                r.events.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.events_per_sec),
            ]
        })
        .collect();
    report::print_table(
        "Engine hot path: dedup flood on random50-deg5",
        &["events", "wall_ms", "events/sec"],
        &rows,
    );
    println!(
        "peak queue depth {}  best {:.0} events/sec",
        result.peak_queue_depth, result.best_events_per_sec
    );
    report::write_json("engine_hotpath", &result);

    let rows: Vec<Vec<String>> = all
        .iter()
        .map(|r| {
            vec![
                r.sink.clone(),
                format!("{:.0}", r.best_events_per_sec),
                format!("{:.1}%", 100.0 * hotpath::paired_overhead(&result, r)),
            ]
        })
        .collect();
    report::print_table(
        "Telemetry overhead (paired best-ratio over interleaved reps)",
        &["sink", "events/sec", "slowdown"],
        &rows,
    );
    report::write_json("telemetry_overhead", &all);
}
