//! Path-layer scaling study: on-demand provider + CSR topology at
//! 1k–10k nodes (see `scmp_bench::scale`).
//!
//! Usage: `scale [--smoke] [--jobs N]`. `--smoke` caps the curve at 1k
//! nodes and skips the 5k fig-shaped cells (CI-sized). Writes
//! `bench_results/scale.json`. When running parallel, the deterministic
//! portion of the report is re-run serially and byte-compared as a
//! determinism guard; timing rows are exempt.

use scmp_bench::sweep::{resolve_jobs, take_jobs_arg};
use scmp_bench::{report, scale};

fn main() {
    let (rest, jobs_flag) = take_jobs_arg(std::env::args().skip(1).collect());
    let smoke = rest.iter().any(|a| a == "--smoke");
    let jobs = resolve_jobs(jobs_flag);

    let rep = scale::run(smoke, jobs);
    if jobs > 1 {
        let serial = scale::run(smoke, 1);
        assert_eq!(
            rep.deterministic_json(),
            serial.deterministic_json(),
            "scale study diverged between --jobs {jobs} and serial"
        );
        println!(
            "(determinism guard: --jobs {jobs} deterministic output byte-identical to serial)"
        );
    }

    let curve_rows: Vec<Vec<String>> = rep
        .curve
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                r.n.to_string(),
                r.edges.to_string(),
                format!("{:.1}", r.topo_bytes as f64 / 1024.0),
                format!("{:.1}", r.path_bytes as f64 / 1024.0),
                format!("{:.1}", r.all_pairs_bytes as f64 / 1024.0),
                r.cache_hits.to_string(),
                r.cache_misses.to_string(),
                r.cache_evictions.to_string(),
                if r.all_delivered { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    report::print_table(
        "Path-layer scaling curve (resident KiB: lazy provider vs all-pairs counterfactual)",
        &[
            "family",
            "n",
            "edges",
            "topo_KiB",
            "path_KiB",
            "allpairs_KiB",
            "hits",
            "misses",
            "evict",
            "delivered",
        ],
        &curve_rows,
    );

    if !rep.fig_5k.is_empty() {
        let fig_rows: Vec<Vec<String>> = rep
            .fig_5k
            .iter()
            .map(|r| {
                vec![
                    r.protocol.clone(),
                    r.group_size.to_string(),
                    r.data_overhead.to_string(),
                    r.protocol_overhead.to_string(),
                    r.p50_e2e_delay.to_string(),
                    r.max_e2e_delay.to_string(),
                    if r.all_delivered { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        report::print_table(
            &format!(
                "Fig. 8/9-shaped run at n = {} (transit-stub)",
                rep.fig_5k[0].n
            ),
            &[
                "protocol",
                "group",
                "data_ovh",
                "proto_ovh",
                "p50_delay",
                "max_delay",
                "delivered",
            ],
            &fig_rows,
        );
    }

    let timing_rows: Vec<Vec<String>> = rep
        .timing
        .iter()
        .map(|t| {
            vec![
                t.label.clone(),
                t.n.to_string(),
                format!("{:.1}", t.topo_build_ms),
                format!("{:.1}", t.workload_ms),
                format!("{:.1}", t.join_mean_us),
                format!("{:.0}", t.events_per_sec),
                t.peak_rss_bytes
                    .map(|b| format!("{:.1}", b as f64 / (1024.0 * 1024.0)))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    report::print_table(
        "Timing (wall-clock; excluded from the determinism guard)",
        &[
            "cell",
            "n",
            "topo_ms",
            "workload_ms",
            "join_us",
            "events/s",
            "peakRSS_MiB",
        ],
        &timing_rows,
    );

    // Smoke runs are a CI guard, not the study — never clobber the
    // committed full-scale record (same policy as `stress --smoke`).
    if smoke {
        println!("\n(smoke run: bench_results/scale.json left untouched)");
    } else {
        report::write_json("scale", &rep);
    }
}
