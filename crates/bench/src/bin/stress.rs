//! STRESS scenario explorer: boundary-point search, failure
//! minimization, corpus pinning (see `scmp_bench::stress`).
//!
//! Usage:
//!
//! ```text
//! stress [--jobs N] [--seed S] [--warmup W] [--passes P]
//!        [--max-boundaries B] [--smoke] [--no-pin] [--force-pin]
//!        [--corpus-dir DIR]
//! ```
//!
//! Writes `bench_results/stress.json` (byte-identical for any `--jobs`
//! value; re-checked against a serial run whenever it runs parallel)
//! and pins each minimized boundary reproducer under the corpus
//! directory (default `tests/scenarios/corpus/`) unless `--no-pin`.
//! Exits nonzero when the search finds a hard invariant violation —
//! that is a protocol bug, not an envelope edge.

use scmp_bench::report;
use scmp_bench::stress::{self, SearchConfig};
use scmp_bench::sweep::{resolve_jobs, take_jobs_arg};
use std::path::PathBuf;

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    args.remove(i);
    Some(args.remove(i))
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let i = args.iter().position(|a| a == flag);
    if let Some(i) = i {
        args.remove(i);
    }
    i.is_some()
}

fn parse<T: std::str::FromStr>(flag: &str, v: String) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: bad value {v:?}");
        std::process::exit(2);
    })
}

fn main() {
    let (mut args, jobs_flag) = take_jobs_arg(std::env::args().skip(1).collect());
    let jobs = resolve_jobs(jobs_flag);
    let smoke = take_flag(&mut args, "--smoke");
    let no_pin = take_flag(&mut args, "--no-pin");
    let force_pin = take_flag(&mut args, "--force-pin");
    let seed = take_value(&mut args, "--seed").map_or(0, |v| parse("--seed", v));
    let mut cfg = if smoke {
        SearchConfig::smoke(seed)
    } else {
        SearchConfig::full(seed)
    };
    if let Some(v) = take_value(&mut args, "--warmup") {
        cfg.warmup = parse("--warmup", v);
    }
    if let Some(v) = take_value(&mut args, "--passes") {
        cfg.passes = parse("--passes", v);
    }
    if let Some(v) = take_value(&mut args, "--max-boundaries") {
        cfg.max_boundaries = parse("--max-boundaries", v);
    }
    let corpus_dir: PathBuf = take_value(&mut args, "--corpus-dir")
        .map_or_else(|| PathBuf::from("tests/scenarios/corpus"), PathBuf::from);
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        std::process::exit(2);
    }

    let rep = stress::search(&cfg, jobs);
    if jobs > 1 {
        let serial = stress::search(&cfg, 1);
        assert_eq!(
            serde_json::to_string(&rep).unwrap(),
            serde_json::to_string(&serial).unwrap(),
            "stress search diverged between --jobs {jobs} and serial"
        );
        println!("(determinism guard: --jobs {jobs} output byte-identical to serial)");
    }

    let failed = rep
        .warmup_cells
        .iter()
        .filter(|c| !c.hard.is_empty() || !c.boundary.is_empty())
        .count();
    println!(
        "warm-up: {} points, {} failing, {} distinct boundaries refined, {} evaluations total",
        rep.warmup,
        failed,
        rep.boundaries.len(),
        rep.evaluations
    );

    let rows: Vec<Vec<String>> = rep
        .boundaries
        .iter()
        .map(|b| {
            let p = b.boundary.point;
            vec![
                b.boundary
                    .hard
                    .iter()
                    .chain(&b.boundary.boundary)
                    .cloned()
                    .collect::<Vec<_>>()
                    .join("+"),
                stress::topo_name(p.topo).to_string(),
                format!(
                    "loss={} dup={} reorder={} flaps={} crash={} churn={} retry={} repair={} tol={}",
                    p.loss, p.dup, p.reorder, p.flaps, p.crash, p.churn, p.retry, p.repair,
                    p.tolerance
                ),
                format!("{:.3}", b.boundary.delivery_ratio),
                format!("{}ev+{}f", b.minimized_events, b.minimized_faults),
            ]
        })
        .collect();
    report::print_table(
        "Boundary points (coordinate descent from warm-up failures)",
        &[
            "signature",
            "topo",
            "boundary point",
            "delivery",
            "minimized",
        ],
        &rows,
    );

    if !no_pin {
        match stress::pin_corpus(
            &corpus_dir,
            &rep.boundaries
                .iter()
                .map(|b| stress::corpus_entry(b, cfg.seed))
                .collect::<Vec<_>>(),
            force_pin,
        ) {
            Ok(outcomes) => {
                for (file, outcome) in outcomes {
                    println!("corpus: {} — {outcome}", corpus_dir.join(file).display());
                }
            }
            Err(e) => {
                eprintln!("corpus pinning failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // The committed record is the *full* search; a smoke run must not
    // clobber it from CI.
    if smoke {
        println!("(smoke run: bench_results/stress.json left untouched)");
    } else {
        report::write_json("stress", &rep);
    }

    if !rep.hard_failures.is_empty() {
        eprintln!(
            "HARD INVARIANT VIOLATIONS at {} points — this is a protocol bug:",
            rep.hard_failures.len()
        );
        for c in &rep.hard_failures {
            eprintln!("  {:?} at {:?}", c.hard, c.point);
        }
        std::process::exit(1);
    }
}
