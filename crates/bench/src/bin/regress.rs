//! `regress` — the perf-regression gate (see `scmp_bench::regress`).
//!
//! ```text
//! regress [--smoke] [--inject F] [--jobs N] [--reps N]
//!
//!   --smoke      CI mode: 3 timed reps per sink, no regress.json write
//!   --inject F   divide measured throughput by F (gate self-test:
//!                --inject 2 must exit non-zero)
//!   --jobs N     worker count for the scenario-corpus byte-identity
//!                guard (default SCMP_JOBS / core count)
//!   --reps N     timed repetitions per sink in full mode (default 3)
//! ```
//!
//! Re-runs the engine hot-path benches at the committed workload size
//! and compares against `bench_results/engine_hotpath.json` and
//! `bench_results/telemetry_overhead.json` under the per-metric
//! tolerance model. Before timing anything it replays the pinned
//! scenario corpus serially and on a worker pool and requires byte-
//! identical results and traces — a perf number is only comparable if
//! the simulation underneath is still deterministic. Full mode writes
//! the verdict to `bench_results/regress.json`. Exits non-zero on any
//! failed check or guard mismatch.

use scmp_bench::sweep::resolve_jobs;
use scmp_bench::{regress, report, scenario_file};
use std::path::Path;
use std::process::ExitCode;

struct Args {
    smoke: bool,
    inject: f64,
    jobs: Option<usize>,
    reps: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        inject: 1.0,
        jobs: None,
        reps: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--inject" => {
                let v = it.next().ok_or("--inject needs a factor")?;
                args.inject = v.parse().map_err(|_| format!("bad factor {v:?}"))?;
                if args.inject <= 0.0 {
                    return Err("--inject factor must be positive".to_string());
                }
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a count")?;
                args.jobs = Some(v.parse().map_err(|_| format!("bad count {v:?}"))?);
            }
            "--reps" => {
                let v = it.next().ok_or("--reps needs a count")?;
                args.reps = v.parse().map_err(|_| format!("bad count {v:?}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// Replay the pinned scenario corpus serially and on `jobs` workers;
/// any difference in results or traces means the simulation drifted
/// from determinism and perf numbers are meaningless.
fn corpus_byte_identity(jobs: usize) -> Result<usize, String> {
    let dir = Path::new("tests/scenarios/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let jsons: Vec<String> = paths
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display())))
        .collect::<Result<_, _>>()?;
    if jsons.is_empty() {
        return Err(format!("{}: no corpus scenarios", dir.display()));
    }
    let serial = scenario_file::run_batch(&jsons, 1);
    let parallel = scenario_file::run_batch(&jsons, jobs.max(2));
    for ((s, p), path) in serial.iter().zip(&parallel).zip(&paths) {
        let identical = match (s, p) {
            (Ok((sr, st)), Ok((pr, pt))) => {
                serde_json::to_string(sr) == serde_json::to_string(pr) && st == pt
            }
            (Err(se), Err(pe)) => se == pe,
            _ => false,
        };
        if !identical {
            return Err(format!(
                "{}: serial and parallel replay diverged",
                path.display()
            ));
        }
    }
    Ok(jsons.len())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("regress: {e}");
            eprintln!("usage: regress [--smoke] [--inject F] [--jobs N] [--reps N]");
            return ExitCode::FAILURE;
        }
    };

    let jobs = resolve_jobs(args.jobs);
    match corpus_byte_identity(jobs) {
        Ok(n) => println!("corpus guard: {n} scenarios byte-identical at jobs=1 and jobs={jobs}"),
        Err(e) => {
            eprintln!("regress: corpus guard: {e}");
            return ExitCode::FAILURE;
        }
    }

    let baseline = match regress::load_baseline(Path::new("bench_results/engine_hotpath.json")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("regress: {e}");
            return ExitCode::FAILURE;
        }
    };
    let overhead_baseline =
        match regress::load_overhead_baseline(Path::new("bench_results/telemetry_overhead.json")) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("regress: {e}");
                return ExitCode::FAILURE;
            }
        };

    // The paired overhead estimator needs several interleaved pairs to
    // dodge load spikes, so even smoke mode runs 3 reps per sink.
    let reps = if args.smoke { 3 } else { args.reps.max(1) };
    let tol = regress::Tolerances::default();
    if args.inject != 1.0 {
        println!(
            "(self-test: dividing measured throughput by {})",
            args.inject
        );
    }
    let mut verdict = match regress::run_gate(&baseline, &overhead_baseline, reps, tol, args.inject)
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("regress: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Reliability band: re-run the chaos sweep (1 seed in smoke, the
    // baseline's full seed set otherwise) and hold the NACK-recovery
    // tier to its committed delivery floors and latency ceiling.
    let chaos_baseline = match regress::load_chaos_baseline(Path::new("bench_results/chaos.json")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("regress: {e}");
            return ExitCode::FAILURE;
        }
    };
    let chaos_seeds = if args.smoke { 1 } else { chaos_baseline.seeds };
    println!(
        "chaos recovery band: re-running the reliability sweep ({chaos_seeds} seed{})",
        if chaos_seeds == 1 { "" } else { "s" }
    );
    verdict.checks.extend(regress::chaos_recovery_checks(
        &chaos_baseline,
        chaos_seeds,
        jobs,
    ));
    verdict.passed = verdict.checks.iter().all(|c| c.pass);

    report::print_table(
        &format!(
            "Perf-regression gate ({} sends, {} rep{})",
            verdict.sends,
            reps,
            if reps == 1 { "" } else { "s" }
        ),
        &["metric", "baseline", "measured", "band", "verdict"],
        &verdict.rows(),
    );
    println!("verdict: {}", if verdict.passed { "PASS" } else { "FAIL" });
    if !args.smoke {
        report::write_json("regress", &verdict);
    }
    if verdict.passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
