//! Turn the committed JSON results into SVG figures:
//! `cargo run -p scmp-bench --bin plots` after running `fig7`/`fig8`.
//! Writes `bench_results/fig7_*.svg`, `fig8_*.svg`, `fig9_*.svg`.

use scmp_bench::plot::{render, ChartConfig, Series};
use serde_json::Value;
use std::fs;

fn load(name: &str) -> Option<Vec<Value>> {
    let path = format!("bench_results/{name}.json");
    let data = fs::read_to_string(&path).ok()?;
    serde_json::from_str(&data).ok()
}

fn save(name: &str, svg: &str) {
    let path = format!("bench_results/{name}.svg");
    fs::write(&path, svg).expect("write svg");
    println!("wrote {path}");
}

fn f(v: &Value, key: &str) -> f64 {
    v[key].as_f64().unwrap_or(0.0)
}

fn main() {
    if let Some(points) = load("fig7") {
        for (metric, fig) in [("delay", "fig7_delay"), ("cost", "fig7_cost")] {
            for level in ["tightest", "moderate", "loosest"] {
                let series: Vec<Series> = ["spt", "kmb", "dcdm", "greedy"]
                    .iter()
                    .map(|algo| Series {
                        label: algo.to_uppercase(),
                        points: points
                            .iter()
                            .filter(|p| p["level"] == level)
                            .map(|p| (f(p, "group_size"), f(p, &format!("{algo}_{metric}"))))
                            .collect(),
                    })
                    .collect();
                let svg = render(
                    &ChartConfig {
                        title: format!("Fig 7 tree {metric} — {level} constraint"),
                        x_label: "group size".into(),
                        y_label: format!("tree {metric}"),
                        log_y: false,
                    },
                    &series,
                );
                save(&format!("{fig}_{level}"), &svg);
            }
        }
    } else {
        eprintln!("bench_results/fig7.json missing — run the fig7 binary first");
    }

    if let Some(points) = load("fig8_fig9") {
        let topos = ["arpanet", "random50-deg3", "random50-deg5"];
        for (metric, label, log) in [
            ("data_overhead", "data overhead", false),
            ("protocol_overhead", "protocol overhead", true),
            ("max_e2e_delay", "max end-to-end delay", false),
        ] {
            for topo in topos {
                let series: Vec<Series> = ["scmp", "cbt", "dvmrp", "mospf"]
                    .iter()
                    .map(|proto| Series {
                        label: proto.to_uppercase(),
                        points: points
                            .iter()
                            .filter(|p| p["topology"] == topo && p["protocol"] == *proto)
                            .map(|p| (f(p, "group_size"), f(p, metric).max(1.0)))
                            .collect(),
                    })
                    .collect();
                let fig = if metric == "max_e2e_delay" {
                    "fig9"
                } else {
                    "fig8"
                };
                let svg = render(
                    &ChartConfig {
                        title: format!("{label} — {topo}"),
                        x_label: "group size".into(),
                        y_label: label.into(),
                        log_y: log,
                    },
                    &series,
                );
                save(&format!("{fig}_{metric}_{topo}"), &svg);
            }
        }
    } else {
        eprintln!("bench_results/fig8_fig9.json missing — run the fig8 binary first");
    }
}
