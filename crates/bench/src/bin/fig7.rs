//! Regenerate Fig. 7: tree delay and tree cost vs group size for SPT,
//! KMB and DCDM under the three delay-constraint levels.

use scmp_bench::{fig7, report, sweep};

fn main() {
    let (args, jobs) = sweep::take_jobs_arg(std::env::args().skip(1).collect());
    let seeds: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let points = fig7::run_jobs(
        &fig7::Fig7Config {
            seeds,
            ..Default::default()
        },
        sweep::resolve_jobs(jobs),
    );
    for level in ["tightest", "moderate", "loosest"] {
        let rows: Vec<Vec<String>> = points
            .iter()
            .filter(|p| p.level == level)
            .map(|p| {
                vec![
                    p.group_size.to_string(),
                    format!("{:.0}", p.spt_delay),
                    format!("{:.0}", p.kmb_delay),
                    format!("{:.0}", p.dcdm_delay),
                    format!("{:.0}", p.greedy_delay),
                    format!("{:.0}", p.spt_cost),
                    format!("{:.0}", p.kmb_cost),
                    format!("{:.0}", p.dcdm_cost),
                    format!("{:.0}", p.greedy_cost),
                ]
            })
            .collect();
        report::print_table(
            &format!("Fig 7 — delay constraint: {level}"),
            &[
                "group",
                "spt_delay",
                "kmb_delay",
                "dcdm_delay",
                "greedy_delay",
                "spt_cost",
                "kmb_cost",
                "dcdm_cost",
                "greedy_cost",
            ],
            &rows,
        );
    }
    report::write_json("fig7", &points);
}
