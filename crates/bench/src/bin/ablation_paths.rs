//! DCDM candidate path-set ablation: both P_lc and P_sl (paper) vs one
//! family only.

use scmp_bench::{ablation, report};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let points = ablation::run_paths(seeds);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.group_size.to_string(),
                format!("{:.0}", p.both_cost),
                format!("{:.0}", p.lc_only_cost),
                format!("{:.0}", p.sl_only_cost),
                format!("{:.0}", p.both_delay),
                format!("{:.0}", p.lc_only_delay),
                format!("{:.0}", p.sl_only_delay),
            ]
        })
        .collect();
    report::print_table(
        "DCDM candidate set ablation (Waxman n=100, dynamic bound)",
        &[
            "group",
            "cost_both",
            "cost_lc",
            "cost_sl",
            "delay_both",
            "delay_lc",
            "delay_sl",
        ],
        &rows,
    );
    report::write_json("ablation_paths", &points);
}
