//! Shared-tree trio comparison: SCMP vs CBT vs PIM-SM (beyond the
//! paper's figures; see `scmp_bench::extra_pimsm`).

use scmp_bench::{extra_pimsm, report};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let points = extra_pimsm::run(seeds);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.protocol.clone(),
                p.group_size.to_string(),
                format!("{:.0}", p.data_overhead),
                format!("{:.0}", p.protocol_overhead),
                format!("{:.0}", p.max_e2e_delay),
            ]
        })
        .collect();
    report::print_table(
        "Shared-tree trio on random50-deg3 (30 pkts, off-tree source)",
        &[
            "protocol",
            "group",
            "data_overhead",
            "protocol_overhead",
            "max_e2e",
        ],
        &rows,
    );
    report::write_json("extra_pimsm", &points);
}
