//! `scmp-inspect` — query a JSONL telemetry trace.
//!
//! ```text
//! scmp-inspect <trace.jsonl> [FLAGS]
//!
//!   (no flags)       one-screen summary: span, event counts, groups
//!   --convergence    per-group convergence timeline (every group, or
//!                    only the one named by --group)
//!   --hist           recomputed e2e-delay / repair-latency histograms
//!   --audit          delivery audit; exits 1 on duplicate delivery or
//!                    unaccounted loss
//!   --gauges         the per-tick gauge time series
//!   --group N        restrict --convergence to group N
//!   --node N         dump the events that fired at node N
//! ```
//!
//! Flags compose: `scmp-inspect t.jsonl --hist --audit` prints both and
//! still exits non-zero when the audit fails.

use scmp_telemetry::Trace;
use std::process::ExitCode;

struct Args {
    path: String,
    convergence: bool,
    hist: bool,
    audit: bool,
    gauges: bool,
    group: Option<u32>,
    node: Option<u32>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        convergence: false,
        hist: false,
        audit: false,
        gauges: false,
        group: None,
        node: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--convergence" => args.convergence = true,
            "--hist" => args.hist = true,
            "--audit" => args.audit = true,
            "--gauges" => args.gauges = true,
            "--group" => {
                let v = it.next().ok_or("--group needs a value")?;
                args.group = Some(v.parse().map_err(|_| format!("bad group {v:?}"))?);
            }
            "--node" => {
                let v = it.next().ok_or("--node needs a value")?;
                args.node = Some(v.parse().map_err(|_| format!("bad node {v:?}"))?);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            path if args.path.is_empty() => args.path = path.to_string(),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    if args.path.is_empty() {
        return Err(
            "usage: scmp-inspect <trace.jsonl> [--convergence] [--hist] \
                    [--audit] [--gauges] [--group N] [--node N]"
                .to_string(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scmp-inspect: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scmp-inspect: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scmp-inspect: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };

    let any_query =
        args.convergence || args.hist || args.audit || args.gauges || args.node.is_some();
    if !any_query {
        print!("{}", trace.summary());
        return ExitCode::SUCCESS;
    }

    if let Some(node) = args.node {
        let evs = trace.node_events(node);
        println!("node {node}: {} events", evs.len());
        for ev in evs {
            println!("  {}", scmp_telemetry::encode_events(&[ev]).trim_end());
        }
    }

    if args.convergence {
        let groups: Vec<u32> = match args.group {
            Some(g) => vec![g],
            None => trace.groups(),
        };
        for g in groups {
            print!("{}", trace.convergence(g).report());
        }
    }

    if args.hist {
        let h = trace.histograms();
        print!("{}", h.e2e_delay.dump("e2e delay (ticks)"));
        print!("{}", h.repair.dump("repair latency (ticks)"));
    }

    if args.gauges {
        println!("time      queue  down_links  down_nodes  deliveries");
        for g in trace.gauges() {
            println!(
                "{:<9} {:<6} {:<11} {:<11} {}",
                g.time, g.queue_depth, g.down_links, g.down_nodes, g.deliveries
            );
        }
    }

    if args.audit {
        let audit = trace.audit();
        print!("{}", audit.report());
        if !audit.passed() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
