//! `scmp-inspect` — query a JSONL telemetry trace.
//!
//! ```text
//! scmp-inspect <trace.jsonl> [FLAGS]
//!
//!   (no flags)       one-screen summary: span, event counts, groups
//!   --convergence    per-group convergence timeline (every group, or
//!                    only the one named by --group)
//!   --hist           recomputed e2e-delay / repair-latency histograms
//!   --audit          delivery audit; exits 1 on ANY hard violation:
//!                    duplicate delivery, unaccounted loss, phantom
//!                    delivery, disordered timestamps
//!   --gauges         the per-tick gauge time series
//!   --journey G:TAG  hop-by-hop journey of one packet/transaction
//!   --journey G      every journey in group G (data tags first)
//!   --joins G        JOIN → BRANCH/TREE → ACK → first-delivery causal
//!                    chains for group G
//!   --health         per-group tree-health samples (cost, depth,
//!                    members, stretch, delay variation)
//!   --group N        restrict --convergence to group N
//!   --node N         dump the events that fired at node N
//! ```
//!
//! Flags compose: `scmp-inspect t.jsonl --hist --audit` prints both and
//! still exits non-zero when the audit fails.

use scmp_telemetry::Trace;
use std::process::ExitCode;

struct Args {
    path: String,
    convergence: bool,
    hist: bool,
    audit: bool,
    gauges: bool,
    health: bool,
    /// `(group, Some(tag))` for one journey, `(group, None)` for all.
    journey: Option<(u32, Option<u64>)>,
    joins: Option<u32>,
    group: Option<u32>,
    node: Option<u32>,
}

/// Parse a `--journey` operand: `G` or `G:TAG`.
fn parse_journey(v: &str) -> Result<(u32, Option<u64>), String> {
    match v.split_once(':') {
        None => Ok((v.parse().map_err(|_| format!("bad group {v:?}"))?, None)),
        Some((g, t)) => {
            let g = g.parse().map_err(|_| format!("bad group {g:?}"))?;
            let t = t.parse().map_err(|_| format!("bad tag {t:?}"))?;
            Ok((g, Some(t)))
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        convergence: false,
        hist: false,
        audit: false,
        gauges: false,
        health: false,
        journey: None,
        joins: None,
        group: None,
        node: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--convergence" => args.convergence = true,
            "--hist" => args.hist = true,
            "--audit" => args.audit = true,
            "--gauges" => args.gauges = true,
            "--health" => args.health = true,
            "--journey" => {
                let v = it.next().ok_or("--journey needs G or G:TAG")?;
                args.journey = Some(parse_journey(&v)?);
            }
            "--joins" => {
                let v = it.next().ok_or("--joins needs a group")?;
                args.joins = Some(v.parse().map_err(|_| format!("bad group {v:?}"))?);
            }
            "--group" => {
                let v = it.next().ok_or("--group needs a value")?;
                args.group = Some(v.parse().map_err(|_| format!("bad group {v:?}"))?);
            }
            "--node" => {
                let v = it.next().ok_or("--node needs a value")?;
                args.node = Some(v.parse().map_err(|_| format!("bad node {v:?}"))?);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            path if args.path.is_empty() => args.path = path.to_string(),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    if args.path.is_empty() {
        return Err(
            "usage: scmp-inspect <trace.jsonl> [--convergence] [--hist] \
                    [--audit] [--gauges] [--health] [--journey G[:TAG]] \
                    [--joins G] [--group N] [--node N]"
                .to_string(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scmp-inspect: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scmp-inspect: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scmp-inspect: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };

    let any_query = args.convergence
        || args.hist
        || args.audit
        || args.gauges
        || args.health
        || args.journey.is_some()
        || args.joins.is_some()
        || args.node.is_some();
    if !any_query {
        print!("{}", trace.summary());
        return ExitCode::SUCCESS;
    }

    if let Some(node) = args.node {
        let evs = trace.node_events(node);
        println!("node {node}: {} events", evs.len());
        for ev in evs {
            println!("  {}", scmp_telemetry::encode_events(&[ev]).trim_end());
        }
    }

    if args.convergence {
        let groups: Vec<u32> = match args.group {
            Some(g) => vec![g],
            None => trace.groups(),
        };
        for g in groups {
            print!("{}", trace.convergence(g).report());
        }
    }

    if args.hist {
        let h = trace.histograms();
        print!("{}", h.e2e_delay.dump("e2e delay (ticks)"));
        print!("{}", h.repair.dump("repair latency (ticks)"));
    }

    if let Some((group, tag)) = args.journey {
        let tags = match tag {
            Some(t) => vec![t],
            None => trace.journey_tags(group),
        };
        if tags.is_empty() {
            println!("group {group}: no journeys in trace");
        }
        for t in tags {
            let j = trace.journey(group, t);
            if j.is_empty() {
                println!("journey g{group} tag {t}: no events in trace");
            } else {
                print!("{}", j.report());
            }
        }
    }

    if let Some(group) = args.joins {
        print!("{}", trace.joins_report(group));
    }

    if args.health {
        print!("{}", trace.health_report());
    }

    if args.gauges {
        println!("time      queue  down_links  down_nodes  deliveries");
        for g in trace.gauges() {
            println!(
                "{:<9} {:<6} {:<11} {:<11} {}",
                g.time, g.queue_depth, g.down_links, g.down_nodes, g.deliveries
            );
        }
    }

    if args.audit {
        let audit = trace.audit();
        print!("{}", audit.report());
        if !audit.passed() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
