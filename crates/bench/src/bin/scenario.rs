//! Run a JSON scenario file on the full SCMP protocol:
//! `cargo run -p scmp-bench --bin scenario -- path/to/scenario.json`

use scmp_bench::scenario_file::run_scenario;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: scenario <file.json>");
        std::process::exit(2);
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match run_scenario(&json) {
        Ok(result) => {
            println!(
                "{}",
                serde_json::to_string_pretty(&result).expect("serialisable")
            );
        }
        Err(e) => {
            eprintln!("scenario error: {e}");
            std::process::exit(1);
        }
    }
}
