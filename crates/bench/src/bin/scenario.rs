//! Run JSON scenario files on the full SCMP protocol:
//! `cargo run -p scmp-bench --bin scenario -- a.json [b.json ...] [--jobs N]`
//!
//! One file behaves as before (the file's `telemetry.jsonl` path streams
//! straight to disk). Several files fan out over the sweep worker pool;
//! results print in argument order and are byte-identical to `--jobs 1`,
//! and each scenario's `telemetry.jsonl` file — if requested — is
//! written from its captured in-memory trace after the run, so workers
//! never share file handles.

use scmp_bench::scenario_file::{run_batch, run_scenario, ScenarioFile};
use scmp_bench::sweep;

fn main() {
    let (paths, jobs) = sweep::take_jobs_arg(std::env::args().skip(1).collect());
    if paths.is_empty() {
        eprintln!("usage: scenario <file.json> [more.json ...] [--jobs N]");
        std::process::exit(2);
    }
    let jsons: Vec<String> = paths
        .iter()
        .map(|path| match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        })
        .collect();

    if jsons.len() == 1 {
        match run_scenario(&jsons[0]) {
            Ok(result) => println!(
                "{}",
                serde_json::to_string_pretty(&result).expect("serialisable")
            ),
            Err(e) => {
                eprintln!("scenario error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let outcomes = run_batch(&jsons, sweep::resolve_jobs(jobs));
    let mut failed = false;
    for ((path, json), outcome) in paths.iter().zip(&jsons).zip(outcomes) {
        match outcome {
            Ok((result, trace)) => {
                if let Some(dest) = jsonl_path(json) {
                    if let Err(e) = std::fs::write(&dest, &trace) {
                        eprintln!("{path}: telemetry jsonl {dest:?}: {e}");
                        failed = true;
                    }
                }
                println!(
                    "{}",
                    serde_json::to_string_pretty(&result).expect("serialisable")
                );
            }
            Err(e) => {
                eprintln!("{path}: scenario error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// The `telemetry.jsonl` export path a scenario asks for, if any.
fn jsonl_path(json: &str) -> Option<String> {
    let spec: ScenarioFile = serde_json::from_str(json).ok()?;
    spec.telemetry.and_then(|t| t.jsonl)
}
