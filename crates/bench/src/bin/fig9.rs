//! Regenerate Fig. 9: maximum end-to-end delay vs group size on the
//! three §IV-B topologies.

use scmp_bench::{netperf, report, sweep};

fn main() {
    let (args, jobs) = sweep::take_jobs_arg(std::env::args().skip(1).collect());
    let seeds: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let points = netperf::run_suite_jobs(seeds, sweep::resolve_jobs(jobs), false).points;
    for kind in netperf::TopologyKind::ALL {
        let mut rows = Vec::new();
        for gs in kind.group_sizes() {
            let mut row = vec![gs.to_string()];
            for proto in netperf::Protocol::FIG_8_9 {
                let p = points
                    .iter()
                    .find(|p| {
                        p.topology == kind.label()
                            && p.protocol == proto.label()
                            && p.group_size == gs
                    })
                    .expect("full sweep");
                row.push(format!(
                    "{:.0}/{:.0}/{:.0}",
                    p.p50_e2e_delay, p.p99_e2e_delay, p.max_e2e_delay
                ));
            }
            rows.push(row);
        }
        report::print_table(
            &format!(
                "Fig 9 — end-to-end delay p50/p99/max (ticks) on {}",
                kind.label()
            ),
            &["group", "scmp", "cbt", "dvmrp", "mospf"],
            &rows,
        );
    }
    report::write_json("fig8_fig9", &points);
}
