//! BRANCH vs full-TREE distribution ablation (§III-E design choice).

use scmp_bench::{ablation, report};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let points = ablation::run_branch(seeds);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.group_size.to_string(),
                format!("{:.0}", p.with_branch),
                format!("{:.0}", p.tree_only),
                format!("{:.2}x", p.tree_only / p.with_branch.max(1.0)),
            ]
        })
        .collect();
    report::print_table(
        "Join-phase protocol overhead: BRANCH vs TREE-only",
        &["group", "with_branch", "tree_only", "ratio"],
        &rows,
    );
    report::write_json("ablation_branch", &points);
}
