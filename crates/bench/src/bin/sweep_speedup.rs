//! Measure sweep-executor scaling on the Fig. 8/9 network suite: run
//! the same cell matrix serially and on a worker pool, check the merged
//! output (points and concatenated JSONL trace) is byte-identical, and
//! record wall-clock times in `bench_results/sweep_speedup.json`.
//!
//! `cargo run --release -p scmp-bench --bin sweep_speedup -- [seeds] [--jobs N]`

use scmp_bench::{netperf, report, sweep};
use serde::Serialize;
use std::time::Instant;

/// Persisted scaling record. `speedup` is serial/parallel wall clock;
/// on a single-core host it hovers near 1.0 by construction, so `cores`
/// is recorded to make the number interpretable.
#[derive(Serialize)]
struct SpeedupReport {
    /// (topology, protocol, group size, seed) cells in the matrix.
    cells: usize,
    seeds: u64,
    /// Cores visible to the process when the measurement ran.
    cores: usize,
    jobs: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    points_identical: bool,
    jsonl_identical: bool,
}

fn main() {
    let (args, jobs) = sweep::take_jobs_arg(std::env::args().skip(1).collect());
    let seeds: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(3);
    let jobs = jobs.unwrap_or(4).max(2);
    let cells = netperf::suite_cells(seeds).len();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let t0 = Instant::now();
    let serial = netperf::run_suite_jobs(seeds, 1, true);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let parallel = netperf::run_suite_jobs(seeds, jobs, true);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    let points_identical = serde_json::to_string(&serial.points).expect("serialisable")
        == serde_json::to_string(&parallel.points).expect("serialisable");
    let jsonl_identical = serial.jsonl == parallel.jsonl;

    let rec = SpeedupReport {
        cells,
        seeds,
        cores,
        jobs,
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms.max(1e-9),
        points_identical,
        jsonl_identical,
    };
    report::print_table(
        "sweep executor scaling (Fig. 8/9 suite)",
        &[
            "cells",
            "cores",
            "jobs",
            "serial_ms",
            "parallel_ms",
            "speedup",
            "identical",
        ],
        &[vec![
            rec.cells.to_string(),
            rec.cores.to_string(),
            rec.jobs.to_string(),
            format!("{:.0}", rec.serial_ms),
            format!("{:.0}", rec.parallel_ms),
            format!("{:.2}", rec.speedup),
            (points_identical && jsonl_identical).to_string(),
        ]],
    );
    report::write_json("sweep_speedup", &rec);
    if !points_identical || !jsonl_identical {
        eprintln!("error: parallel output diverged from serial");
        std::process::exit(1);
    }
}
