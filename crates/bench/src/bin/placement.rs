//! §IV-A placement heuristics study: rules 1–3 vs random m-router
//! placement.

use scmp_bench::{placement_exp, report, sweep};

fn main() {
    let (args, jobs) = sweep::take_jobs_arg(std::env::args().skip(1).collect());
    let seeds: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let points = placement_exp::run_jobs(seeds, sweep::resolve_jobs(jobs));
    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            p.strategy.clone(),
            p.group_size.to_string(),
            format!("{:.0}", p.tree_cost),
            format!("{:.0}", p.tree_delay),
        ]);
    }
    report::print_table(
        "m-router placement (DCDM trees, Waxman n=100)",
        &["strategy", "group", "tree_cost", "tree_delay"],
        &rows,
    );
    report::write_json("placement", &points);
}
