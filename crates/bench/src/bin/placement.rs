//! §IV-A placement heuristics study: rules 1–3 vs random m-router
//! placement.

use scmp_bench::{placement_exp, report};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let points = placement_exp::run(seeds);
    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            p.strategy.clone(),
            p.group_size.to_string(),
            format!("{:.0}", p.tree_cost),
            format!("{:.0}", p.tree_delay),
        ]);
    }
    report::print_table(
        "m-router placement (DCDM trees, Waxman n=100)",
        &["strategy", "group", "tree_cost", "tree_delay"],
        &rows,
    );
    report::write_json("placement", &points);
}
