//! Regenerate Fig. 8: data overhead (a–c) and protocol overhead (d–f)
//! vs group size for SCMP, CBT, DVMRP and MOSPF on the three §IV-B
//! topologies.

use scmp_bench::{netperf, report, sweep};

fn main() {
    let (args, jobs) = sweep::take_jobs_arg(std::env::args().skip(1).collect());
    let seeds: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let points = netperf::run_suite_jobs(seeds, sweep::resolve_jobs(jobs), false).points;
    for kind in netperf::TopologyKind::ALL {
        for (metric, pick) in [("data overhead", 0usize), ("protocol overhead", 1)] {
            let mut rows = Vec::new();
            for gs in kind.group_sizes() {
                let mut row = vec![gs.to_string()];
                for proto in netperf::Protocol::FIG_8_9 {
                    let p = points
                        .iter()
                        .find(|p| {
                            p.topology == kind.label()
                                && p.protocol == proto.label()
                                && p.group_size == gs
                        })
                        .expect("full sweep");
                    let v = if pick == 0 {
                        p.data_overhead
                    } else {
                        p.protocol_overhead
                    };
                    row.push(format!("{v:.0}"));
                }
                rows.push(row);
            }
            report::print_table(
                &format!("Fig 8 — {metric} on {}", kind.label()),
                &["group", "scmp", "cbt", "dvmrp", "mospf"],
                &rows,
            );
        }
    }
    report::write_json("fig8_fig9", &points);
}
