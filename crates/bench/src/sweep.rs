//! Deterministic parallel sweep execution.
//!
//! Every benchmark sweep in this harness iterates a matrix of fully
//! independent cells — `(topology kind, group size, seed)` and friends —
//! where each cell derives its own RNG stream via
//! `rng_for(label, seed)` and owns its engine. [`SweepRunner`] fans
//! those cells out to a worker pool and merges the results **in the
//! input cell order**, so parallel output is byte-identical to serial
//! output; `--jobs 1` (or `SCMP_JOBS=1`) recovers the plain serial
//! loop.
//!
//! The pool is built on `std::thread::scope` rather than rayon — the
//! offline build vendors no rayon, and a shared atomic cursor over a
//! cell list gives the same fan-out/ordered-merge architecture with no
//! dependency. Determinism does not rest on the scheduler: workers may
//! claim cells in any interleaving, but each result lands in the slot
//! of its cell index and the fold runs over slots in order.
//!
//! ```
//! use scmp_bench::sweep::SweepRunner;
//! let cells: Vec<u64> = (0..100).collect();
//! let serial = SweepRunner::new(1).run(&cells, |_, &c| c * c);
//! let parallel = SweepRunner::new(4).run(&cells, |_, &c| c * c);
//! assert_eq!(serial, parallel);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "SCMP_JOBS";

/// Resolve the worker count: an explicit request (CLI `--jobs`) wins,
/// then [`JOBS_ENV`], then the machine's available parallelism.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var(JOBS_ENV)
                .ok()
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Strip a `--jobs N` / `--jobs=N` flag out of an argument list,
/// returning the remaining positional arguments and the parsed value.
/// Exits with a usage error on a malformed flag (bench binaries call
/// this before interpreting positionals).
pub fn take_jobs_arg(args: Vec<String>) -> (Vec<String>, Option<usize>) {
    let mut rest = Vec::with_capacity(args.len());
    let mut jobs = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let value = if a == "--jobs" {
            it.next()
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else {
            rest.push(a);
            continue;
        };
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n >= 1 => jobs = Some(n),
            _ => {
                eprintln!("--jobs expects a positive integer");
                std::process::exit(2);
            }
        }
    }
    (rest, jobs)
}

/// A deterministic parallel map over independent sweep cells.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with exactly `jobs` workers (at least 1; 1 = serial).
    pub fn new(jobs: usize) -> Self {
        SweepRunner { jobs: jobs.max(1) }
    }

    /// A runner honouring `--jobs`/`SCMP_JOBS`/core count, in that
    /// order (see [`resolve_jobs`]).
    pub fn from_env(explicit: Option<usize>) -> Self {
        SweepRunner::new(resolve_jobs(explicit))
    }

    /// The worker count this runner fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `f` over every cell and return the results **in cell
    /// order**, regardless of which worker ran which cell when. `f`
    /// receives the cell's index alongside the cell so labelled outputs
    /// (per-cell trace files, progress lines) stay deterministic too.
    ///
    /// With one worker (or one cell) this is a plain in-order map on
    /// the calling thread — the serial reference the parallel path is
    /// byte-compared against.
    pub fn run<T, R, F>(&self, cells: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.jobs.min(cells.len());
        if workers <= 1 {
            return cells.iter().enumerate().map(|(i, c)| f(i, c)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(cells.len());
        slots.resize_with(cells.len(), || None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let f = &f;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(cell) = cells.get(i) else { break };
                            got.push((i, f(i, cell)));
                        }
                        got
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("sweep worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every cell ran exactly once"))
            .collect()
    }

    /// [`run`](Self::run) for cells that each produce a JSONL fragment
    /// alongside their result: returns the results in cell order plus
    /// the fragments concatenated in cell order — the parallel
    /// equivalent of one serial writer appending cell after cell.
    pub fn run_traced<T, R, F>(&self, cells: &[T], f: F) -> (Vec<R>, String)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> (R, String) + Sync,
    {
        let outcomes = self.run(cells, f);
        let mut results = Vec::with_capacity(outcomes.len());
        let mut jsonl = String::new();
        for (r, frag) in outcomes {
            results.push(r);
            jsonl.push_str(&frag);
        }
        (results, jsonl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_cell_order() {
        let cells: Vec<usize> = (0..257).collect();
        // Make later cells cheaper than earlier ones so workers finish
        // out of order, then check the merge re-establishes cell order.
        let out = SweepRunner::new(8).run(&cells, |i, &c| {
            if c < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(i, c);
            c * 3
        });
        assert_eq!(out, cells.iter().map(|c| c * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial() {
        let cells: Vec<u64> = (0..100).collect();
        let f = |_: usize, &c: &u64| c.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        let serial = SweepRunner::new(1).run(&cells, f);
        for jobs in [2, 3, 4, 16] {
            assert_eq!(SweepRunner::new(jobs).run(&cells, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let n = 500;
        let cells: Vec<usize> = (0..n).collect();
        let counter = AtomicU64::new(0);
        let out = SweepRunner::new(7).run(&cells, |_, &c| {
            counter.fetch_add(1, Ordering::Relaxed);
            c
        });
        assert_eq!(out.len(), n);
        assert_eq!(counter.load(Ordering::Relaxed), n as u64);
    }

    #[test]
    fn traced_fragments_concatenate_in_cell_order() {
        let cells: Vec<usize> = (0..40).collect();
        let f = |_: usize, &c: &usize| (c, format!("line-{c}\n"));
        let (serial, serial_jsonl) = SweepRunner::new(1).run_traced(&cells, f);
        let (par, par_jsonl) = SweepRunner::new(5).run_traced(&cells, f);
        assert_eq!(serial, par);
        assert_eq!(serial_jsonl, par_jsonl, "concatenation is order-stable");
        assert!(serial_jsonl.starts_with("line-0\nline-1\n"));
    }

    #[test]
    fn empty_and_single_cell_edge_cases() {
        let none: Vec<u32> = Vec::new();
        assert!(SweepRunner::new(4).run(&none, |_, &c| c).is_empty());
        assert_eq!(SweepRunner::new(4).run(&[9u32], |_, &c| c + 1), vec![10]);
    }

    #[test]
    fn jobs_arg_parsing() {
        let (rest, jobs) = take_jobs_arg(vec!["5".into(), "--jobs".into(), "3".into()]);
        assert_eq!(rest, vec!["5".to_string()]);
        assert_eq!(jobs, Some(3));
        let (rest, jobs) = take_jobs_arg(vec!["--jobs=8".into()]);
        assert!(rest.is_empty());
        assert_eq!(jobs, Some(8));
        let (rest, jobs) = take_jobs_arg(vec!["7".into()]);
        assert_eq!(rest, vec!["7".to_string()]);
        assert_eq!(jobs, None);
        assert_eq!(resolve_jobs(Some(5)), 5);
    }
}
