//! Fig. 7 — multicast tree quality: DCDM vs KMB vs SPT.
//!
//! §IV-A setup: Waxman topology, 100 nodes, α = 0.25, β = 0.2; group
//! size 10..90 step 10; each point averaged over 10 seeds; delay
//! constraint at three levels (tightest / moderate / loosest). SPT and
//! KMB ignore the constraint (they appear identically in every panel of
//! the paper's figure); DCDM takes it as a fixed bound.

use rand::seq::SliceRandom;
use scmp_net::rng::rng_for;
use scmp_net::topology::{waxman, WaxmanConfig};
use scmp_net::{provider_for, NodeId};
use scmp_tree::{
    delay_bound, kmb_tree, spt_tree, ConstraintLevel, Dcdm, DelayBound, GreedySteiner,
};
use serde::Serialize;

/// One averaged data point of the figure.
#[derive(Clone, Debug, Serialize)]
pub struct Fig7Point {
    /// Delay-constraint level label.
    pub level: String,
    /// Number of group members.
    pub group_size: usize,
    /// Mean tree delay per algorithm (greedy = the online heuristic of
    /// the paper's reference \[1\], added beyond the paper's three).
    pub spt_delay: f64,
    pub kmb_delay: f64,
    pub dcdm_delay: f64,
    pub greedy_delay: f64,
    /// Mean tree cost per algorithm.
    pub spt_cost: f64,
    pub kmb_cost: f64,
    pub dcdm_cost: f64,
    pub greedy_cost: f64,
}

/// Experiment parameters (paper defaults via [`Default`]).
#[derive(Clone, Copy, Debug)]
pub struct Fig7Config {
    /// Topology size (paper: 100).
    pub nodes: usize,
    /// Seeds per point (paper: 10).
    pub seeds: u64,
    /// Group sizes swept (paper: 10..=90 step 10).
    pub min_group: usize,
    pub max_group: usize,
    pub group_step: usize,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            nodes: 100,
            seeds: 10,
            min_group: 10,
            max_group: 90,
            group_step: 10,
        }
    }
}

/// Run the full Fig. 7 sweep with the default worker pool
/// (`SCMP_JOBS` / core count).
pub fn run(cfg: &Fig7Config) -> Vec<Fig7Point> {
    run_jobs(cfg, crate::sweep::resolve_jobs(None))
}

/// Run the full Fig. 7 sweep on `jobs` workers. Each
/// `(level, group size, seed)` cell is independent — it derives its
/// topology and member draw from `rng_for("fig7", seed)` — so the
/// fan-out merges in fixed cell order and any `jobs` value yields the
/// same points as the serial loop.
pub fn run_jobs(cfg: &Fig7Config, jobs: usize) -> Vec<Fig7Point> {
    let sizes: Vec<usize> = (cfg.min_group..=cfg.max_group)
        .step_by(cfg.group_step)
        .collect();
    let mut cells: Vec<(ConstraintLevel, usize, u64)> = Vec::new();
    for level in ConstraintLevel::ALL {
        for &gs in &sizes {
            for seed in 0..cfg.seeds {
                cells.push((level, gs, seed));
            }
        }
    }
    let samples = crate::sweep::SweepRunner::new(jobs).run(&cells, |_, &(level, gs, seed)| {
        run_one(cfg, level, gs, seed)
    });

    let mut out = Vec::new();
    let per_point = cfg.seeds.max(1) as usize;
    for (chunk_idx, group) in samples.chunks(per_point).enumerate() {
        let (level, gs, _) = cells[chunk_idx * per_point];
        let mut acc: [Vec<f64>; 8] = Default::default();
        for sample in group {
            for (slot, v) in acc.iter_mut().zip(sample) {
                slot.push(*v);
            }
        }
        out.push(Fig7Point {
            level: level.label().to_string(),
            group_size: gs,
            spt_delay: crate::report::mean(&acc[0]),
            kmb_delay: crate::report::mean(&acc[1]),
            dcdm_delay: crate::report::mean(&acc[2]),
            greedy_delay: crate::report::mean(&acc[3]),
            spt_cost: crate::report::mean(&acc[4]),
            kmb_cost: crate::report::mean(&acc[5]),
            dcdm_cost: crate::report::mean(&acc[6]),
            greedy_cost: crate::report::mean(&acc[7]),
        });
    }
    out
}

/// One (level, group size, seed) sample:
/// `[spt_delay, kmb_delay, dcdm_delay, greedy_delay,
///   spt_cost, kmb_cost, dcdm_cost, greedy_cost]`.
fn run_one(cfg: &Fig7Config, level: ConstraintLevel, group_size: usize, seed: u64) -> [f64; 8] {
    let mut rng = rng_for("fig7", seed);
    let topo = waxman(
        &WaxmanConfig {
            n: cfg.nodes,
            ..WaxmanConfig::default()
        },
        &mut rng,
    );
    let paths = provider_for(&topo);
    let root = NodeId(0);
    let mut candidates: Vec<NodeId> = topo.nodes().filter(|&v| v != root).collect();
    candidates.shuffle(&mut rng);
    let members: Vec<NodeId> = candidates
        .into_iter()
        .take(group_size.min(cfg.nodes - 1))
        .collect();

    let spt = spt_tree(&topo, &paths, root, &members);
    let kmb = kmb_tree(&topo, &paths, root, &members);
    let bound = delay_bound(level, &paths, root, &members);
    let mut dcdm = Dcdm::new(&topo, &paths, root, DelayBound::Fixed(bound));
    for &m in &members {
        dcdm.join(m);
    }
    let dcdm = dcdm.into_tree();
    let mut greedy = GreedySteiner::new(&topo, &paths, root);
    for &m in &members {
        greedy.join(m);
    }
    let greedy = greedy.into_tree();

    [
        spt.tree_delay(&topo) as f64,
        kmb.tree_delay(&topo) as f64,
        dcdm.tree_delay(&topo) as f64,
        greedy.tree_delay(&topo) as f64,
        spt.tree_cost(&topo) as f64,
        kmb.tree_cost(&topo) as f64,
        dcdm.tree_cost(&topo) as f64,
        greedy.tree_cost(&topo) as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig7Config {
        Fig7Config {
            nodes: 40,
            seeds: 3,
            min_group: 5,
            max_group: 25,
            group_step: 10,
        }
    }

    #[test]
    fn shape_matches_paper_claims() {
        let points = run(&small());
        for p in &points {
            // SPT is delay-optimal; nothing beats it.
            assert!(p.kmb_delay >= p.spt_delay - 1e-9, "{p:?}");
            assert!(p.dcdm_delay >= p.spt_delay - 1e-9, "{p:?}");
            // KMB is the cheapest; SPT the most expensive (on average the
            // ordering can wobble per seed, but with 3 seeds at these
            // sizes it holds robustly for the mean).
            assert!(p.kmb_cost <= p.spt_cost + 1e-9, "{p:?}");
        }
        // DCDM cost sits between KMB and SPT at the loosest level.
        let loosest: Vec<_> = points.iter().filter(|p| p.level == "loosest").collect();
        for p in &loosest {
            assert!(
                p.dcdm_cost <= p.spt_cost * 1.15,
                "loose DCDM should not exceed SPT cost materially: {p:?}"
            );
        }
    }

    #[test]
    fn parallel_jobs_match_serial() {
        let cfg = small();
        let serial = serde_json::to_string(&run_jobs(&cfg, 1)).unwrap();
        let parallel = serde_json::to_string(&run_jobs(&cfg, 4)).unwrap();
        assert_eq!(serial, parallel, "fig7 points must not depend on jobs");
    }

    #[test]
    fn deterministic() {
        let a = run(&Fig7Config {
            seeds: 2,
            min_group: 10,
            max_group: 10,
            nodes: 30,
            group_step: 10,
        });
        let b = run(&Fig7Config {
            seeds: 2,
            min_group: 10,
            max_group: 10,
            nodes: 30,
            group_step: 10,
        });
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dcdm_cost, y.dcdm_cost);
            assert_eq!(x.kmb_delay, y.kmb_delay);
        }
    }
}
