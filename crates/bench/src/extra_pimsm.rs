//! Extra experiment: PIM-SM vs CBT vs SCMP on the §IV-B scenarios.
//!
//! The paper's figures compare four protocols; its *text* also argues
//! against PIM-SM as an ST-based design (§I). This experiment puts the
//! three shared-tree protocols side by side: PIM-SM's single-pass join
//! is the cheapest control plane, but its unidirectional tree pays the
//! RP detour on every packet — SCMP's bidirectional DCDM tree wins data
//! overhead, CBT sits between.

use crate::netperf::{scenario, TopologyKind, PACKETS, SECOND};
use scmp_protocols::{build_engine, ProtocolKind, ProtocolParams};
use scmp_sim::{AppEvent, EngineRunner, GroupId, SimStats};
use serde::Serialize;

/// One averaged data point.
#[derive(Clone, Debug, Serialize)]
pub struct PimPoint {
    pub protocol: String,
    pub group_size: usize,
    pub data_overhead: f64,
    pub protocol_overhead: f64,
    pub max_e2e_delay: f64,
}

const G: GroupId = GroupId(1);

fn drive(e: &mut dyn EngineRunner, sc: &crate::netperf::Scenario) {
    let mut t = 0;
    for &m in &sc.members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 2_000;
    }
    let start = t + 4 * SECOND;
    for k in 0..PACKETS {
        e.schedule_app(
            start + k * SECOND,
            sc.source,
            AppEvent::Send {
                group: G,
                tag: k + 1,
            },
        );
    }
    e.run_to_quiescence();
}

fn run_cell(proto: &str, gs: usize, seed: u64) -> SimStats {
    let sc = scenario(TopologyKind::Random50Deg3, gs, seed);
    let kind = ProtocolKind::parse(proto).expect("registered protocol");
    let mut e = build_engine(kind, &sc.topo, &ProtocolParams::new(sc.center));
    drive(e.as_mut(), &sc);
    e.stats().clone()
}

/// Sweep the shared-tree trio over group sizes on the degree-3 topology.
pub fn run(seeds: u64) -> Vec<PimPoint> {
    let mut out = Vec::new();
    for gs in TopologyKind::Random50Deg3.group_sizes() {
        for proto in ProtocolKind::SHARED_TREE.map(ProtocolKind::label) {
            let mut data = Vec::new();
            let mut ctrl = Vec::new();
            let mut e2e = Vec::new();
            for seed in 0..seeds {
                let s = run_cell(proto, gs, seed);
                data.push(s.data_overhead as f64);
                ctrl.push(s.protocol_overhead as f64);
                e2e.push(s.max_end_to_end_delay as f64);
            }
            out.push(PimPoint {
                protocol: proto.to_string(),
                group_size: gs,
                data_overhead: crate::report::mean(&data),
                protocol_overhead: crate::report::mean(&ctrl),
                max_e2e_delay: crate::report::mean(&e2e),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pim_join_cheapest_control_scmp_cheapest_data() {
        // One mid-size cell, few seeds — full sweep runs in the binary.
        let mut sums = std::collections::BTreeMap::new();
        for proto in ["scmp", "cbt", "pim-sm"] {
            let mut data = 0;
            let mut ctrl = 0;
            for seed in 0..3 {
                let s = run_cell(proto, 20, seed);
                data += s.data_overhead;
                ctrl += s.protocol_overhead;
            }
            sums.insert(proto, (data, ctrl));
        }
        let (scmp_d, _) = sums["scmp"];
        let (cbt_d, cbt_c) = sums["cbt"];
        let (pim_d, pim_c) = sums["pim-sm"];
        assert!(
            pim_c < cbt_c,
            "single-pass join beats join+ack: {pim_c} vs {cbt_c}"
        );
        assert!(scmp_d <= cbt_d, "DCDM tree beats CBT SPT tree on data");
        // With an off-tree source next to the center, all three pay the
        // same detour, so PIM's penalty only shows for member sources;
        // here it ties CBT within noise.
        assert!(pim_d >= scmp_d, "{pim_d} vs {scmp_d}");
    }
}
