//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * **BRANCH vs TREE**: §III-E argues "if the change is small, using a
//!   TREE packet containing the whole tree structure is too expensive" —
//!   measured by running SCMP with `tree_packets_only` and comparing
//!   protocol overhead.
//! * **Candidate path set**: DCDM searches both `P_lc` and `P_sl` per
//!   on-tree router ("2m paths"); restricting to one family shows what
//!   each contributes to tree cost/delay.

use crate::netperf::{self, Protocol, TopologyKind};
use rand::seq::SliceRandom;
use scmp_core::router::ScmpConfig;
use scmp_net::rng::rng_for;
use scmp_net::topology::{waxman, WaxmanConfig};
use scmp_net::{provider_for, Metric, NodeId};
use scmp_protocols::build_scmp_engine;
use scmp_tree::{Dcdm, DelayBound};
use serde::Serialize;

/// BRANCH-ablation data point.
#[derive(Clone, Debug, Serialize)]
pub struct BranchPoint {
    pub group_size: usize,
    /// Mean protocol overhead with BRANCH packets enabled (paper).
    pub with_branch: f64,
    /// Mean protocol overhead with full TREE refresh on every join.
    pub tree_only: f64,
}

/// Run the BRANCH vs TREE ablation on the degree-3 random topology.
pub fn run_branch(seeds: u64) -> Vec<BranchPoint> {
    let kind = TopologyKind::Random50Deg3;
    let mut out = Vec::new();
    for gs in kind.group_sizes() {
        let mut with_branch = Vec::new();
        let mut tree_only = Vec::new();
        for seed in 0..seeds {
            let sc = netperf::scenario(kind, gs, seed);
            for (flag, acc) in [(false, &mut with_branch), (true, &mut tree_only)] {
                let mut cfg = ScmpConfig::new(sc.center);
                cfg.tree_packets_only = flag;
                let mut e = build_scmp_engine(sc.topo.clone(), cfg);
                let mut t = 0;
                for &m in &sc.members {
                    e.schedule_app(t, m, scmp_sim::AppEvent::Join(scmp_sim::GroupId(1)));
                    t += 2_000;
                }
                e.run_to_quiescence();
                acc.push(e.stats().protocol_overhead as f64);
            }
        }
        out.push(BranchPoint {
            group_size: gs,
            with_branch: crate::report::mean(&with_branch),
            tree_only: crate::report::mean(&tree_only),
        });
    }
    out
}

/// Path-set ablation data point.
#[derive(Clone, Debug, Serialize)]
pub struct PathSetPoint {
    pub group_size: usize,
    pub both_cost: f64,
    pub both_delay: f64,
    pub lc_only_cost: f64,
    pub lc_only_delay: f64,
    pub sl_only_cost: f64,
    pub sl_only_delay: f64,
}

/// Run the DCDM candidate-set ablation on Waxman n = 100.
pub fn run_paths(seeds: u64) -> Vec<PathSetPoint> {
    let sets: [(&str, &[Metric]); 3] = [
        ("both", &[Metric::Cost, Metric::Delay]),
        ("lc", &[Metric::Cost]),
        ("sl", &[Metric::Delay]),
    ];
    let mut out = Vec::new();
    for gs in (10..=90).step_by(20) {
        let mut acc: Vec<(f64, f64)> = Vec::new();
        let mut sums = vec![(Vec::new(), Vec::new()); 3];
        for seed in 0..seeds {
            let mut rng = rng_for("ablation-paths", seed);
            let topo = waxman(&WaxmanConfig::default(), &mut rng);
            let paths = provider_for(&topo);
            let root = NodeId(0);
            let mut pool: Vec<NodeId> = topo.nodes().filter(|&v| v != root).collect();
            pool.shuffle(&mut rng);
            let members: Vec<NodeId> = pool.into_iter().take(gs).collect();
            for (i, (_, metrics)) in sets.iter().enumerate() {
                let mut dcdm = Dcdm::new(&topo, &paths, root, DelayBound::Dynamic);
                dcdm.set_candidate_metrics(metrics);
                for &m in &members {
                    dcdm.join(m);
                }
                let tree = dcdm.into_tree();
                sums[i].0.push(tree.tree_cost(&topo) as f64);
                sums[i].1.push(tree.tree_delay(&topo) as f64);
            }
        }
        acc.clear();
        for (costs, delays) in &sums {
            acc.push((crate::report::mean(costs), crate::report::mean(delays)));
        }
        out.push(PathSetPoint {
            group_size: gs,
            both_cost: acc[0].0,
            both_delay: acc[0].1,
            lc_only_cost: acc[1].0,
            lc_only_delay: acc[1].1,
            sl_only_cost: acc[2].0,
            sl_only_delay: acc[2].1,
        });
    }
    out
}

/// Sanity accessor reused by the `protocols` Criterion bench: run one
/// small SCMP scenario end to end and return its total overhead.
pub fn smoke_protocol_run(proto: Protocol) -> u64 {
    let m = netperf::run_one(TopologyKind::Arpanet, proto, 6, 0);
    m.data_overhead + m.protocol_overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_saves_protocol_overhead() {
        let pts = run_branch(2);
        // Summed over the sweep, BRANCH must be cheaper than full TREE
        // refreshes (that is its entire purpose).
        let wb: f64 = pts.iter().map(|p| p.with_branch).sum();
        let to: f64 = pts.iter().map(|p| p.tree_only).sum();
        assert!(wb < to, "branch {wb} >= tree-only {to}");
    }

    #[test]
    fn dual_path_set_no_worse_on_cost() {
        let pts = run_paths(2);
        for p in &pts {
            // Having more candidates can only improve the chosen cost
            // per join; aggregated over a sweep the ordering holds
            // against the sl-only variant.
            assert!(
                p.both_cost <= p.sl_only_cost * 1.02,
                "both {} vs sl-only {}",
                p.both_cost,
                p.sl_only_cost
            );
        }
    }
}
