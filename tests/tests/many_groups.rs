//! Aggregate-domain behaviour: one m-router serving many concurrent
//! groups (the paper's m-router "integrates multiple routers, each of
//! which can serve more than one multicast groups", §II-A).

use scmp_core::router::ScmpConfig;
use scmp_integration::scenario;
use scmp_net::NodeId;
use scmp_protocols::build_scmp_engine;
use scmp_sim::{AppEvent, GroupId};

#[test]
fn m_router_serves_one_hundred_groups() {
    let sc = scenario(31, 30, 0);
    let mut e = build_scmp_engine(sc.topo.clone(), ScmpConfig::new(NodeId(0)));
    let nodes: Vec<NodeId> = sc.topo.nodes().filter(|v| v.0 != 0).collect();
    // 100 groups, each with two members chosen round-robin.
    let mut t = 0;
    for g in 1..=100u32 {
        let a = nodes[(g as usize * 2) % nodes.len()];
        let b = nodes[(g as usize * 2 + 1) % nodes.len()];
        e.schedule_app(t, a, AppEvent::Join(GroupId(g)));
        e.schedule_app(t + 500, b, AppEvent::Join(GroupId(g)));
        t += 1_000;
    }
    // One payload per group from a rotating source.
    let start = t + 1_000_000;
    for g in 1..=100u32 {
        let src = nodes[(g as usize * 7) % nodes.len()];
        e.schedule_app(
            start + g as u64 * 10_000,
            src,
            AppEvent::Send {
                group: GroupId(g),
                tag: g as u64,
            },
        );
    }
    e.run_to_quiescence();

    let m = e.router(NodeId(0)).m_state().unwrap();
    for g in 1..=100u32 {
        let group = GroupId(g);
        assert!(m.tree(group).is_some(), "group {g} has a tree");
        assert!(
            m.fabric_port(group).is_some(),
            "group {g} has a fabric port"
        );
        let a = nodes[(g as usize * 2) % nodes.len()];
        let b = nodes[(g as usize * 2 + 1) % nodes.len()];
        let src = nodes[(g as usize * 7) % nodes.len()];
        for member in [a, b] {
            // The rotating source may coincide with a member's subnet;
            // either way each member subnet hears the payload once
            // (sources that are also members count as receivers).
            let expect = 1;
            let got = e.stats().delivery_count(group, g as u64, member);
            assert_eq!(got, expect, "group {g} member {member:?} src {src:?}");
        }
    }
    // Fabric ports are all distinct.
    let mut ports: Vec<usize> = (1..=100u32)
        .map(|g| m.fabric_port(GroupId(g)).unwrap())
        .collect();
    ports.sort_unstable();
    ports.dedup();
    assert_eq!(ports.len(), 100, "no port collisions");
    // Accounting saw every join.
    assert_eq!(m.sessions.log().len(), 200);
    assert_eq!(m.sessions.active_groups().len(), 100);
}
