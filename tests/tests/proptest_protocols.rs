//! Property-based integration tests: protocol invariants over random
//! topologies, groups and churn schedules.

use proptest::prelude::*;
use scmp_integration::{scenario, scmp_engine, G};
use scmp_net::metrics::reachable_set;
use scmp_net::{AllPairsPaths, NodeId};
use scmp_sim::AppEvent;
use scmp_tree::repair;
use scmp_tree::{Dcdm, DelayBound};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SCMP delivers every payload to every member exactly once, with no
    /// duplicates anywhere, for arbitrary scenario shapes.
    #[test]
    fn scmp_exactly_once_delivery(seed in 0u64..500, n in 10usize..35, g in 1usize..10) {
        let sc = scenario(seed, n, g);
        let mut e = scmp_engine(sc.topo.clone());
        let mut t = 0;
        for &m in &sc.members {
            e.schedule_app(t, m, AppEvent::Join(G));
            t += 1_000;
        }
        e.schedule_app(t + 500_000, sc.source, AppEvent::Send { group: G, tag: 1 });
        e.run_to_quiescence();
        for &m in &sc.members {
            prop_assert_eq!(e.stats().delivery_count(G, 1, m), 1);
        }
        prop_assert!(!e.stats().has_duplicate_deliveries());
        // Non-members receive nothing.
        for v in sc.topo.nodes() {
            if !sc.members.contains(&v) {
                prop_assert_eq!(e.stats().delivery_count(G, 1, v), 0);
            }
        }
    }

    /// Arbitrary interleavings of joins and leaves never leave stale
    /// entries: after everyone leaves and the network quiesces, only the
    /// m-router may hold state.
    #[test]
    fn scmp_churn_leaves_no_stale_state(
        seed in 0u64..500,
        n in 10usize..30,
        ops in prop::collection::vec((0usize..8, prop::bool::ANY), 1..24),
    ) {
        let sc = scenario(seed, n, 8);
        let mut e = scmp_engine(sc.topo.clone());
        let mut t = 0;
        // Replay the op schedule: (member index, join/leave).
        for (idx, join) in &ops {
            let m = sc.members[*idx % sc.members.len()];
            let ev = if *join { AppEvent::Join(G) } else { AppEvent::Leave(G) };
            e.schedule_app(t, m, ev);
            t += 5_000;
        }
        // Drain every remaining membership.
        t += 100_000;
        for &m in &sc.members {
            for _ in 0..ops.len() {
                e.schedule_app(t, m, AppEvent::Leave(G));
                t += 1_000;
            }
        }
        e.run_to_quiescence();
        for v in sc.topo.nodes() {
            if v == NodeId(0) {
                continue;
            }
            prop_assert!(
                e.router(v).entry(G).is_none(),
                "stale entry at {:?}", v
            );
        }
        let m = e.router(NodeId(0)).m_state().unwrap();
        if let Some(tree) = m.tree(G) {
            prop_assert_eq!(tree.member_count(), 0);
            prop_assert_eq!(tree.on_tree_count(), 1);
        }
    }

    /// The m-router mirror and physical entries agree after quiescence
    /// for any join schedule.
    #[test]
    fn scmp_mirror_agreement(seed in 0u64..300, n in 10usize..30, g in 1usize..10) {
        let sc = scenario(seed, n, g);
        let mut e = scmp_engine(sc.topo.clone());
        let mut t = 0;
        for &m in &sc.members {
            e.schedule_app(t, m, AppEvent::Join(G));
            t += 1_000;
        }
        e.run_to_quiescence();
        let tree = e
            .router(NodeId(0))
            .m_state()
            .unwrap()
            .tree(G)
            .unwrap()
            .clone();
        prop_assert_eq!(tree.validate(Some(&sc.topo)), Ok(()));
        for v in sc.topo.nodes() {
            if v == NodeId(0) {
                continue;
            }
            let entry = e.router(v).entry(G);
            prop_assert_eq!(tree.contains(v), entry.is_some(), "node {:?}", v);
            if let Some(entry) = entry {
                prop_assert_eq!(entry.upstream, tree.parent(v));
            }
        }
    }

    /// Tree repair never partitions connected receivers: for any random
    /// topology, member set and single-link failure, re-running DCDM on
    /// the surviving topology yields a valid tree covering exactly the
    /// members still reachable from the root.
    #[test]
    fn tree_repair_never_partitions_connected_receivers(
        seed in 0u64..500,
        n in 8usize..30,
        g in 2usize..8,
        kill in any::<u32>(),
    ) {
        let sc = scenario(seed, n, g);
        let root = NodeId(0);
        let paths = AllPairsPaths::compute(&sc.topo);
        let mut dcdm = Dcdm::new(&sc.topo, &paths, root, DelayBound::Dynamic);
        for &m in &sc.members {
            dcdm.join(m);
        }
        let tree = dcdm.into_tree();
        prop_assert_eq!(tree.validate(Some(&sc.topo)), Ok(()));

        // Kill one link, chosen by the `kill` draw.
        let edges = sc.topo.edges();
        let (ka, kb, _) = edges[kill as usize % edges.len()];
        let surviving = sc.topo.subtopology(
            |_| true,
            |a, b| !((a == ka && b == kb) || (a == kb && b == ka)),
        );
        let reachable = reachable_set(&surviving, root);

        // The damage report must flag the cut iff it carried tree load.
        let damage = repair::assess(&tree, |_| true, |a, b| surviving.has_link(a, b));
        let on_tree = tree
            .edges()
            .iter()
            .any(|&(p, c)| (p == ka && c == kb) || (p == kb && c == ka));
        prop_assert_eq!(!damage.broken_edges.is_empty(), on_tree);

        // Repair exactly as the m-router's scan does: rebuild with DCDM
        // over the surviving topology for the reachable members.
        let spaths = AllPairsPaths::compute(&surviving);
        let mut rebuilt = Dcdm::new(&surviving, &spaths, root, DelayBound::Dynamic);
        for &m in &sc.members {
            if reachable[m.index()] {
                rebuilt.join(m);
            }
        }
        let repaired = rebuilt.into_tree();
        prop_assert_eq!(repaired.validate(Some(&surviving)), Ok(()));
        for &m in &sc.members {
            prop_assert_eq!(
                repaired.is_member(m),
                reachable[m.index()],
                "member {:?} (reachable = {})", m, reachable[m.index()]
            );
        }
    }
}
