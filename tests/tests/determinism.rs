//! Determinism regression for the event queue: two runs of the same
//! seeded failstorm must produce byte-identical traces.
//!
//! The golden-trace test pins one scenario's exact output; this one
//! guards the ordering contract itself — `(time, seq)` — under the
//! conditions where an arena-backed heap could drift: bursts of events
//! scheduled on the *same tick* (tie-broken only by insertion sequence),
//! faults rewiring the topology mid-run, and a finite-capacity model
//! backlogging links so transmission completions collide too.

use scmp_core::router::ScmpConfig;
use scmp_integration::{scenario, G};
use scmp_net::NodeId;
use scmp_protocols::build_scmp_engine;
use scmp_sim::{AppEvent, CapacityModel, FaultKind, FaultPlan};

/// Run the failstorm once and render the complete trace.
fn run_failstorm() -> Vec<String> {
    let sc = scenario(42, 25, 0);
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.repair_interval = 2_000;
    cfg.join_retry = 5_000;
    cfg.leave_retry = 5_000;
    let mut e = build_scmp_engine(sc.topo.clone(), cfg);
    e.enable_trace();
    e.set_capacity(CapacityModel::uniform(50, 6));

    // Same-tick join burst: every ordering decision inside one tick
    // falls back to the sequence counter.
    let members: Vec<NodeId> = sc.topo.nodes().filter(|v| (1..=8).contains(&v.0)).collect();
    for &m in &members {
        e.schedule_app(0, m, AppEvent::Join(G));
    }
    // Cut a real tree-adjacent link, crash a member DR, restore both.
    let neighbour = sc.topo.neighbors(NodeId(0))[0].to;
    let plan = FaultPlan::new()
        .at(
            30_000,
            FaultKind::LinkDown {
                a: 0,
                b: neighbour.0,
            },
        )
        .at(45_000, FaultKind::RouterCrash { node: members[0].0 })
        .at(60_000, FaultKind::RouterRecover { node: members[0].0 })
        .at(
            70_000,
            FaultKind::LinkUp {
                a: 0,
                b: neighbour.0,
            },
        );
    e.schedule_fault_plan(&plan);
    // Same-tick send bursts from several sources, landing before,
    // during and after the failures.
    for (burst, t) in [(1u64, 20_000u64), (2, 50_000), (3, 80_000)] {
        for (i, &src) in members.iter().take(4).enumerate() {
            e.schedule_app(
                t,
                src,
                AppEvent::Send {
                    group: G,
                    tag: burst * 10 + i as u64,
                },
            );
        }
    }
    e.run_until(150_000);

    e.trace()
        .iter()
        .map(|r| format!("{} n{} {:?}", r.time, r.node.0, r.kind))
        .collect()
}

/// The sweep executor's contract: the merged report and the
/// concatenated per-cell JSONL trace of the Fig. 8/9 matrix must be
/// byte-identical whatever the worker count.
#[test]
fn parallel_netperf_sweep_is_byte_identical_to_serial() {
    let serial = scmp_bench::netperf::run_suite_jobs(1, 1, true);
    let parallel = scmp_bench::netperf::run_suite_jobs(1, 4, true);
    assert_eq!(
        serde_json::to_string(&serial.points).unwrap(),
        serde_json::to_string(&parallel.points).unwrap(),
        "report JSON must not depend on --jobs"
    );
    assert!(!serial.jsonl.is_empty(), "traced suite captures events");
    assert_eq!(
        serial.jsonl, parallel.jsonl,
        "concatenated JSONL must not depend on --jobs"
    );
}

/// Same contract for scenario batches: several copies of the repo's
/// failstorm scenario, fanned over 4 workers, must reproduce the serial
/// summaries and traces byte for byte.
#[test]
fn parallel_failstorm_batch_is_byte_identical_to_serial() {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../examples/scenarios/failstorm.json"
    ))
    .expect("failstorm scenario present");
    let jsons = vec![json.clone(), json.clone(), json];
    let serial = scmp_bench::scenario_file::run_batch(&jsons, 1);
    let parallel = scmp_bench::scenario_file::run_batch(&jsons, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let (sr, st) = s.as_ref().expect("failstorm runs clean");
        let (pr, pt) = p.as_ref().expect("failstorm runs clean");
        assert_eq!(
            serde_json::to_string(sr).unwrap(),
            serde_json::to_string(pr).unwrap(),
            "scenario summary must not depend on jobs"
        );
        assert!(!st.is_empty(), "captured trace is non-empty");
        assert_eq!(st, pt, "captured JSONL must not depend on jobs");
    }
}

#[test]
fn failstorm_trace_is_byte_identical_across_runs() {
    let first = run_failstorm();
    let second = run_failstorm();
    assert!(!first.is_empty(), "scenario produced no trace");
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_eq!(a, b, "trace diverges at line {}", i + 1);
    }
    assert_eq!(
        first.len(),
        second.len(),
        "trace length differs between runs"
    );
}
