//! End-to-end SCMP scenarios across random topologies and the ARPANET.

use scmp_core::router::ScmpConfig;
use scmp_integration::{drive_joins_then_sends, scenario, scmp_engine, G};
use scmp_net::rng::rng_for;
use scmp_net::topology::arpanet;
use scmp_net::NodeId;
use scmp_protocols::build_scmp_engine;
use scmp_sim::{AppEvent, GroupId};

#[test]
fn random_topologies_deliver_every_packet_exactly_once() {
    for seed in 0..8 {
        let sc = scenario(seed, 30, 8);
        let mut e = scmp_engine(sc.topo.clone());
        drive_joins_then_sends(&mut e, &sc.members, sc.source, 5);
        for &m in &sc.members {
            for tag in 1..=5 {
                assert_eq!(
                    e.stats().delivery_count(G, tag, m),
                    1,
                    "seed {seed}: member {m:?} tag {tag}"
                );
            }
        }
        assert!(!e.stats().has_duplicate_deliveries(), "seed {seed}");
    }
}

#[test]
fn arpanet_full_group() {
    // Every node except the m-router joins.
    let topo = arpanet(&mut rng_for("e2e-arpa", 0));
    let members: Vec<NodeId> = topo.nodes().filter(|v| v.0 != 0).collect();
    let mut e = scmp_engine(topo);
    drive_joins_then_sends(&mut e, &members, NodeId(0), 3);
    for &m in &members {
        for tag in 1..=3 {
            assert_eq!(e.stats().delivery_count(G, tag, m), 1, "{m:?}/{tag}");
        }
    }
}

/// Regression: duplicate suppression must key on the full causal trace
/// key — origin included. Application tags are per-source sequence
/// numbers, so two sources legitimately reuse the same tag in one
/// group; a `(group, tag)`-keyed dedup (the old bug) made whichever
/// packet arrived second vanish at the first shared relay.
#[test]
fn two_sources_reusing_a_tag_both_deliver() {
    use scmp_net::topology::examples::fig5;
    let topo = fig5();
    let mut e = scmp_engine(topo);
    let members = [NodeId(3), NodeId(4), NodeId(5)];
    let mut t = 0;
    for &m in &members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 1_000;
    }
    // Nodes 1 and 2 never join; both send payload tag 7. Their packets
    // share (group, tag) but not origin, and the second one crosses
    // relays that have already seen the first.
    e.schedule_app(20_000, NodeId(1), AppEvent::Send { group: G, tag: 7 });
    e.schedule_app(22_000, NodeId(2), AppEvent::Send { group: G, tag: 7 });
    e.run_until(100_000);
    for &m in &members {
        assert_eq!(
            e.stats().delivery_count(G, 7, m),
            2,
            "member {m:?} must hear tag 7 once per source"
        );
    }
}

#[test]
fn m_router_mirror_matches_physical_entries() {
    // The m-router's centrally computed tree must agree, router by
    // router, with the routing entries the TREE/BRANCH packets actually
    // installed in the domain.
    for seed in 0..8 {
        let sc = scenario(seed + 100, 25, 7);
        let mut e = scmp_engine(sc.topo.clone());
        let mut t = 0;
        for &m in &sc.members {
            e.schedule_app(t, m, scmp_sim::AppEvent::Join(G));
            t += 1_000;
        }
        e.run_to_quiescence();
        let tree = e
            .router(NodeId(0))
            .m_state()
            .expect("node 0 is the m-router")
            .tree(G)
            .expect("group exists")
            .clone();
        for v in sc.topo.nodes() {
            let entry = e.router(v).entry(G);
            if v == NodeId(0) {
                let entry = entry.expect("root entry");
                let kids: Vec<NodeId> = entry.downstream_routers.iter().copied().collect();
                assert_eq!(kids, tree.children(v), "seed {seed} root children");
                continue;
            }
            match (tree.contains(v), entry) {
                (true, Some(entry)) => {
                    assert_eq!(entry.upstream, tree.parent(v), "seed {seed} {v:?} upstream");
                    let kids: Vec<NodeId> = entry.downstream_routers.iter().copied().collect();
                    assert_eq!(kids, tree.children(v), "seed {seed} {v:?} children");
                    assert_eq!(
                        entry.local_interface,
                        tree.is_member(v),
                        "seed {seed} {v:?} interface"
                    );
                }
                (false, None) => {}
                (on, entry) => {
                    panic!(
                        "seed {seed}: {v:?} mirror={on} physical={}",
                        entry.is_some()
                    )
                }
            }
        }
    }
}

#[test]
fn multiple_groups_are_independent() {
    let sc = scenario(42, 20, 0);
    let g2 = GroupId(2);
    let mut e = scmp_engine(sc.topo.clone());
    // Disjoint members per group.
    e.schedule_app(0, NodeId(1), AppEvent::Join(G));
    e.schedule_app(0, NodeId(2), AppEvent::Join(g2));
    e.schedule_app(1_000, NodeId(3), AppEvent::Join(G));
    e.schedule_app(1_000, NodeId(4), AppEvent::Join(g2));
    e.schedule_app(500_000, NodeId(5), AppEvent::Send { group: G, tag: 1 });
    e.schedule_app(500_000, NodeId(5), AppEvent::Send { group: g2, tag: 2 });
    e.run_to_quiescence();
    // Group 1 members got tag 1 only; group 2 members tag 2 only.
    assert_eq!(e.stats().delivery_count(G, 1, NodeId(1)), 1);
    assert_eq!(e.stats().delivery_count(G, 1, NodeId(3)), 1);
    assert_eq!(e.stats().delivery_count(g2, 2, NodeId(2)), 1);
    assert_eq!(e.stats().delivery_count(g2, 2, NodeId(4)), 1);
    assert_eq!(e.stats().delivery_count(G, 1, NodeId(2)), 0);
    assert_eq!(e.stats().delivery_count(g2, 2, NodeId(1)), 0);
    // Distinct fabric ports at the m-router.
    let m = e.router(NodeId(0)).m_state().unwrap();
    assert_ne!(m.fabric_port(G), m.fabric_port(g2));
}

#[test]
fn member_sources_use_bidirectional_tree_without_detour() {
    // When the source is a member, its packets must not travel via
    // unicast encapsulation: the data overhead for a member source must
    // be strictly less than for an equivalent off-tree source far away.
    let sc = scenario(7, 25, 6);
    let member_src = sc.members[0];

    let mut on_tree = scmp_engine(sc.topo.clone());
    drive_joins_then_sends(&mut on_tree, &sc.members, member_src, 1);
    let mut off_tree = scmp_engine(sc.topo.clone());
    drive_joins_then_sends(&mut off_tree, &sc.members, sc.source, 1);

    for &m in &sc.members {
        assert_eq!(on_tree.stats().delivery_count(G, 1, m), 1);
        assert_eq!(off_tree.stats().delivery_count(G, 1, m), 1);
    }
}

#[test]
fn leave_storms_then_rejoin_recovers() {
    let sc = scenario(9, 25, 8);
    let mut e = scmp_engine(sc.topo.clone());
    let mut t = 0;
    for &m in &sc.members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 1_000;
    }
    // Everyone leaves at the same instant.
    t += 300_000;
    for &m in &sc.members {
        e.schedule_app(t, m, AppEvent::Leave(G));
    }
    // Then half rejoin.
    t += 300_000;
    let rejoined: Vec<NodeId> = sc.members.iter().copied().step_by(2).collect();
    for &m in &rejoined {
        e.schedule_app(t, m, AppEvent::Join(G));
    }
    e.schedule_app(t + 500_000, sc.source, AppEvent::Send { group: G, tag: 1 });
    e.run_to_quiescence();
    for &m in &sc.members {
        let expected = u64::from(rejoined.contains(&m));
        assert_eq!(e.stats().delivery_count(G, 1, m), expected, "{m:?}");
    }
}

#[test]
fn failover_mid_session_on_random_topology() {
    // Pick the first seed whose topology stays connected when the
    // primary (node 0) dies, so the post-failover assertions always run.
    let sc = (11..40)
        .map(|seed| scenario(seed, 20, 5))
        .find(|sc| sc.topo.without_node(NodeId(0)).components().len() == 2)
        .expect("some seed survives the primary's failure");
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.standby = Some(NodeId(1));
    cfg.heartbeat_interval = 10_000;
    cfg.takeover_rebuild_delay = 20_000;
    let mut e = build_scmp_engine(sc.topo.clone(), cfg);
    let members: Vec<NodeId> = sc
        .members
        .iter()
        .copied()
        .filter(|&m| m != NodeId(1))
        .collect();
    let mut t = 0;
    for &m in &members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 1_000;
    }
    e.run_until(t + 200_000);
    e.set_node_down(NodeId(0), true);
    e.run_until(t + 2_000_000);
    assert!(e.router(NodeId(1)).is_m_router(), "standby must take over");
    // Post-failover data delivery from a fresh (off-tree) source: every
    // member still connected without the dead primary must be served.
    let surviving = sc.topo.without_node(NodeId(0));
    let reachable = scmp_net::AllPairsPaths::compute(&surviving);
    let src = sc.source;
    if src != NodeId(0) && reachable.unicast_delay(src, NodeId(1)).is_some() {
        e.schedule_app(t + 2_100_000, src, AppEvent::Send { group: G, tag: 9 });
        e.run_to_quiescence();
        for &m in &members {
            let expect = u64::from(reachable.unicast_delay(m, NodeId(1)).is_some());
            assert_eq!(
                e.stats().delivery_count(G, 9, m),
                expect,
                "{m:?} post-failover"
            );
        }
    }
}

#[test]
fn protocol_overhead_scales_sub_linearly_with_topology_cost() {
    // Larger groups cost more protocol overhead, but per-member cost
    // shrinks (shared branches) — a coarse efficiency regression guard.
    let small = {
        let sc = scenario(13, 40, 4);
        let mut e = scmp_engine(sc.topo.clone());
        drive_joins_then_sends(&mut e, &sc.members, sc.source, 0);
        e.stats().protocol_overhead as f64 / 4.0
    };
    let large = {
        let sc = scenario(13, 40, 24);
        let mut e = scmp_engine(sc.topo.clone());
        drive_joins_then_sends(&mut e, &sc.members, sc.source, 0);
        e.stats().protocol_overhead as f64 / 24.0
    };
    assert!(
        large < small * 1.5,
        "per-member overhead grew: small {small}, large {large}"
    );
}
