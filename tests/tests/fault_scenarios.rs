//! STRESS-style fault scenarios against the Fig. 5 domain — the parts
//! the pinned regression corpus cannot express.
//!
//! The delivery-ratio / repair-count / takeover verdicts these tests
//! used to assert inline now live as pinned corpus entries replayed by
//! `corpus_replay.rs`:
//!
//! * `tests/scenarios/corpus/fig5-tree-cut-repair.json`
//! * `tests/scenarios/corpus/fig5-offtree-cut.json`
//! * `tests/scenarios/corpus/fig5-crash-standby.json`
//! * `tests/scenarios/corpus/fig5-flapping-link.json`
//!
//! What stays here is the engine-internal structure the corpus checks
//! cannot see: the shape of the repaired tree, the paper's delay
//! constraint on the converged tree, and failure-window accounting.
//!
//! The Fig. 5d tree for members {3, 4, 5} rooted at the m-router 0 is
//! 0-1-4, 0-2, 2-3, 2-5 — so cutting 0-2 severs the limb feeding 3 and
//! 5, while 1-2 carries no tree traffic at all.

use scmp_core::router::{ScmpConfig, ScmpRouter};
use scmp_integration::G;
use scmp_net::topology::examples::fig5;
use scmp_net::{AllPairsPaths, NodeId};
use scmp_protocols::build_scmp_engine;
use scmp_sim::{AppEvent, Engine, FaultKind, FaultPlan};
use scmp_tree::constraint::{delay_bound, ConstraintLevel};

const MEMBERS: [u32; 3] = [4, 3, 5];
const REPAIR_INTERVAL: u64 = 2_000;

/// Fig. 5 engine with the robustness knobs enabled and the standard
/// member set joined at t = 0, 1000, 2000.
fn engine_with(config: ScmpConfig) -> Engine<ScmpRouter> {
    let mut e = build_scmp_engine(fig5(), config);
    for (k, m) in MEMBERS.iter().enumerate() {
        e.schedule_app(k as u64 * 1_000, NodeId(*m), AppEvent::Join(G));
    }
    e
}

fn robust_config() -> ScmpConfig {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.repair_interval = REPAIR_INTERVAL;
    cfg.join_retry = 5_000;
    cfg.leave_retry = 5_000;
    cfg
}

/// Schedule `tags` sends from node 1 at the given times.
fn sends(e: &mut Engine<ScmpRouter>, times: &[u64]) {
    for (k, &t) in times.iter().enumerate() {
        let tag = k as u64 + 1;
        e.schedule_app(t, NodeId(1), AppEvent::Send { group: G, tag });
    }
}

/// After the repair scan reroutes around a cut on-tree link, the
/// rebuilt tree must be well-formed and must not reference the dead
/// link. (Delivery and latency pins: `fig5-tree-cut-repair.json`.)
#[test]
fn repaired_tree_avoids_the_dead_link() {
    let mut e = engine_with(robust_config());
    let plan = FaultPlan::new().at(20_000, FaultKind::LinkDown { a: 0, b: 2 });
    plan.validate(e.topo()).unwrap();
    e.schedule_fault_plan(&plan);
    sends(&mut e, &[10_000, 30_000, 80_000]);
    e.run_until(120_000);

    assert!(e.stats().repairs >= 1, "repair scan never fired");
    let tree = e.router(NodeId(0)).m_state().unwrap().tree(G).unwrap();
    assert_eq!(tree.validate(None), Ok(()));
    for (p, c) in tree.edges() {
        assert!(
            !(p.0.min(c.0) == 0 && p.0.max(c.0) == 2),
            "repaired tree still uses dead link 0-2"
        );
    }
}

/// Takeover machinery internals the corpus's end-state probe cannot
/// see: the new root's address propagates to plain members, and the
/// control traffic spent while node 0 is down is attributed to the
/// failure window. (Delivery and takeover-count pins:
/// `fig5-crash-standby.json`.)
#[test]
fn takeover_propagates_address_and_attributes_failure_overhead() {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.standby = Some(NodeId(2));
    cfg.heartbeat_interval = 500;
    cfg.takeover_rebuild_delay = 500;
    let mut e = engine_with(cfg);
    let plan = FaultPlan::new().at(20_000, FaultKind::RouterCrash { node: 0 });
    plan.validate(e.topo()).unwrap();
    e.schedule_fault_plan(&plan);
    sends(&mut e, &[10_000, 60_000, 90_000]);
    e.run_until(150_000);

    assert!(
        e.router(NodeId(2)).is_m_router(),
        "standby must have promoted itself"
    );
    assert_eq!(e.router(NodeId(4)).m_router_address(), NodeId(2));
    assert!(e.stats().control_overhead_during_failure > 0);
}

/// After a flapping link heals for good, the converged tree satisfies
/// the paper's delay constraint on the healed topology. (Delivery
/// pins: `fig5-flapping-link.json`.)
#[test]
fn flapping_link_converges_to_constraint_satisfying_tree() {
    let mut e = engine_with(robust_config());
    // Flap 0-2 three times; the last transition heals it.
    let mut plan = FaultPlan::new();
    for k in 0..3u64 {
        plan = plan
            .at(20_000 + k * 10_000, FaultKind::LinkDown { a: 0, b: 2 })
            .at(25_000 + k * 10_000, FaultKind::LinkUp { a: 0, b: 2 });
    }
    plan.validate(e.topo()).unwrap();
    e.schedule_fault_plan(&plan);
    sends(&mut e, &[10_000, 27_000, 37_000, 80_000]);
    e.run_until(150_000);

    let topo = fig5();
    let tree = e.router(NodeId(0)).m_state().unwrap().tree(G).unwrap();
    assert_eq!(tree.validate(Some(&topo)), Ok(()));
    let paths = AllPairsPaths::compute(&topo);
    let members: Vec<NodeId> = MEMBERS.iter().map(|&m| NodeId(m)).collect();
    let bound = delay_bound(ConstraintLevel::Moderate, &paths, NodeId(0), &members);
    assert!(
        tree.tree_delay(&topo) <= bound,
        "converged tree delay {} exceeds moderate bound {}",
        tree.tree_delay(&topo),
        bound
    );
}
