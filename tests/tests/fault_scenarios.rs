//! STRESS-style fault scenarios: each test is a declarative [`FaultPlan`]
//! against the Fig. 5 domain, asserting graceful degradation numbers
//! (delivery ratio, repair latency) rather than mere survival.
//!
//! The Fig. 5d tree for members {3, 4, 5} rooted at the m-router 0 is
//! 0-1-4, 0-2, 2-3, 2-5 — so cutting 0-2 severs the limb feeding 3 and
//! 5, while 1-2 carries no tree traffic at all.

use scmp_core::router::{ScmpConfig, ScmpRouter};
use scmp_integration::G;
use scmp_net::topology::examples::fig5;
use scmp_net::{AllPairsPaths, NodeId};
use scmp_protocols::build_scmp_engine;
use scmp_sim::{AppEvent, Engine, FaultKind, FaultPlan};
use scmp_tree::constraint::{delay_bound, ConstraintLevel};

const MEMBERS: [u32; 3] = [4, 3, 5];
const REPAIR_INTERVAL: u64 = 2_000;

/// Fig. 5 engine with the robustness knobs enabled and the standard
/// member set joined at t = 0, 1000, 2000.
fn engine_with(config: ScmpConfig) -> Engine<ScmpRouter> {
    let mut e = build_scmp_engine(fig5(), config);
    for (k, m) in MEMBERS.iter().enumerate() {
        e.schedule_app(k as u64 * 1_000, NodeId(*m), AppEvent::Join(G));
    }
    e
}

fn robust_config() -> ScmpConfig {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.repair_interval = REPAIR_INTERVAL;
    cfg.join_retry = 5_000;
    cfg.leave_retry = 5_000;
    cfg
}

/// Schedule `tags` sends from node 1 at the given times and return the
/// expected (group, tag, member) delivery triples.
fn sends(e: &mut Engine<ScmpRouter>, times: &[u64]) -> Vec<(scmp_sim::GroupId, u64, NodeId)> {
    let mut expected = Vec::new();
    for (k, &t) in times.iter().enumerate() {
        let tag = k as u64 + 1;
        e.schedule_app(t, NodeId(1), AppEvent::Send { group: G, tag });
        for m in MEMBERS {
            expected.push((G, tag, NodeId(m)));
        }
    }
    expected
}

#[test]
fn link_cut_on_tree_is_repaired_within_latency_bound() {
    let mut e = engine_with(robust_config());
    let plan = FaultPlan::new().at(20_000, FaultKind::LinkDown { a: 0, b: 2 });
    plan.validate(e.topo()).unwrap();
    e.schedule_fault_plan(&plan);
    // One packet on the intact tree, one after the cut (the repair scan
    // must reroute before it can reach 3 and 5), one long after.
    let expected = sends(&mut e, &[10_000, 30_000, 80_000]);
    e.run_until(120_000);

    let s = e.stats();
    assert_eq!(s.faults_injected, 1);
    assert!(s.repairs >= 1, "repair scan never fired");
    assert_eq!(
        s.delivery_ratio(expected.iter().copied()),
        1.0,
        "repair must restore full delivery"
    );
    assert!(!s.has_duplicate_deliveries());
    // The scan period bounds detection; one extra period covers rebuild
    // propagation.
    assert!(
        s.max_repair_latency <= 2 * REPAIR_INTERVAL,
        "repair latency {} exceeds bound {}",
        s.max_repair_latency,
        2 * REPAIR_INTERVAL
    );
    // The repaired tree must not reference the dead link.
    let tree = e.router(NodeId(0)).m_state().unwrap().tree(G).unwrap();
    assert_eq!(tree.validate(None), Ok(()));
    for (p, c) in tree.edges() {
        assert!(
            !(p.0.min(c.0) == 0 && p.0.max(c.0) == 2),
            "repaired tree still uses dead link 0-2"
        );
    }
}

#[test]
fn link_cut_off_tree_costs_nothing() {
    let mut e = engine_with(robust_config());
    // 1-2 carries no branch of the Fig. 5d tree.
    let plan = FaultPlan::new().at(20_000, FaultKind::LinkDown { a: 1, b: 2 });
    plan.validate(e.topo()).unwrap();
    e.schedule_fault_plan(&plan);
    let expected = sends(&mut e, &[10_000, 30_000, 60_000]);
    e.run_until(100_000);

    let s = e.stats();
    assert_eq!(s.faults_injected, 1);
    assert_eq!(
        s.delivery_ratio(expected.iter().copied()),
        1.0,
        "off-tree cut must not disturb delivery"
    );
    assert_eq!(s.repairs, 0, "nothing to repair, scan must stay idle");
    assert!(!s.has_duplicate_deliveries());
}

#[test]
fn m_router_crash_with_standby_restores_delivery() {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.standby = Some(NodeId(2));
    cfg.heartbeat_interval = 500;
    cfg.takeover_rebuild_delay = 500;
    let mut e = engine_with(cfg);
    // Crash the primary m-router mid-session via the fault plan (not
    // set_node_down) so the crash is part of the reproducible schedule.
    let plan = FaultPlan::new().at(20_000, FaultKind::RouterCrash { node: 0 });
    plan.validate(e.topo()).unwrap();
    e.schedule_fault_plan(&plan);
    // Tag 1 pre-crash; tags 2 and 3 only deliver if the standby takes
    // over and rebuilds the tree rooted at itself.
    let expected = sends(&mut e, &[10_000, 60_000, 90_000]);
    e.run_until(150_000);

    let s = e.stats();
    assert_eq!(s.faults_injected, 1);
    assert!(
        e.router(NodeId(2)).is_m_router(),
        "standby must have promoted itself"
    );
    assert_eq!(e.router(NodeId(4)).m_router_address(), NodeId(2));
    assert_eq!(
        s.delivery_ratio(expected.iter().copied()),
        1.0,
        "takeover must restore full delivery"
    );
    assert!(!s.has_duplicate_deliveries());
    // Failure-window accounting is live: the takeover machinery's
    // traffic while node 0 is down must be attributed to the window.
    assert!(s.control_overhead_during_failure > 0);
}

#[test]
fn flapping_link_converges_to_constraint_satisfying_tree() {
    let mut e = engine_with(robust_config());
    // Flap 0-2 three times; the last transition heals it.
    let mut plan = FaultPlan::new();
    for k in 0..3u64 {
        plan = plan
            .at(20_000 + k * 10_000, FaultKind::LinkDown { a: 0, b: 2 })
            .at(25_000 + k * 10_000, FaultKind::LinkUp { a: 0, b: 2 });
    }
    plan.validate(e.topo()).unwrap();
    e.schedule_fault_plan(&plan);
    // A send per stable window plus one well after the final heal.
    let expected = sends(&mut e, &[10_000, 27_000, 37_000, 80_000]);
    e.run_until(150_000);

    let s = e.stats();
    assert_eq!(s.faults_injected, 3, "only the down transitions count");
    assert_eq!(
        s.delivery_ratio(expected.iter().copied()),
        1.0,
        "all sends landed in stable windows"
    );
    // Flapping must never double-deliver: each rebuild flushes stale
    // entries before the next generation forwards.
    assert!(!s.has_duplicate_deliveries());
    // The converged tree satisfies the paper's delay constraint on the
    // healed topology.
    let topo = fig5();
    let tree = e.router(NodeId(0)).m_state().unwrap().tree(G).unwrap();
    assert_eq!(tree.validate(Some(&topo)), Ok(()));
    let paths = AllPairsPaths::compute(&topo);
    let members: Vec<NodeId> = MEMBERS.iter().map(|&m| NodeId(m)).collect();
    let bound = delay_bound(ConstraintLevel::Moderate, &paths, NodeId(0), &members);
    assert!(
        tree.tree_delay(&topo) <= bound,
        "converged tree delay {} exceeds moderate bound {}",
        tree.tree_delay(&topo),
        bound
    );
}
