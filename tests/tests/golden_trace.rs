//! Golden-trace regression test: a seeded fault scenario's complete
//! event trace, diffed line-by-line against a committed reference.
//!
//! Any change to event ordering, fault handling, timer scheduling or
//! repair behaviour shows up here as a readable diff. To refresh the
//! golden file after an intentional protocol change, run:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p scmp-integration --test golden_trace
//! ```
//!
//! and review the diff like any other code change.

use scmp_core::router::ScmpConfig;
use scmp_integration::G;
use scmp_net::topology::examples::fig5;
use scmp_net::NodeId;
use scmp_protocols::build_scmp_engine;
use scmp_sim::{AppEvent, FaultKind, FaultPlan};

const GOLDEN: &str = include_str!("../golden/failstorm_trace.txt");

/// The pinned scenario: Fig. 5, repair scan on, a link cut that severs
/// the tree, a router crash/recover cycle, and data packets landing
/// before, during and after the failures.
fn run_pinned_scenario() -> Vec<String> {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.repair_interval = 2_000;
    cfg.join_retry = 5_000;
    cfg.leave_retry = 5_000;
    let mut e = build_scmp_engine(fig5(), cfg);
    e.enable_trace();

    for (t, n) in [(0u64, 4u32), (1_000, 3), (2_000, 5)] {
        e.schedule_app(t, NodeId(n), AppEvent::Join(G));
    }
    let plan = FaultPlan::new()
        .at(20_000, FaultKind::LinkDown { a: 0, b: 2 })
        .at(40_000, FaultKind::RouterCrash { node: 4 })
        .at(50_000, FaultKind::RouterRecover { node: 4 })
        .at(60_000, FaultKind::LinkUp { a: 0, b: 2 });
    e.schedule_fault_plan(&plan);
    e.schedule_app(51_000, NodeId(4), AppEvent::Join(G));
    for (tag, t) in [(1u64, 10_000u64), (2, 30_000), (3, 55_000), (4, 70_000)] {
        e.schedule_app(t, NodeId(1), AppEvent::Send { group: G, tag });
    }
    e.run_until(80_000);

    e.trace()
        .iter()
        .map(|r| format!("{} n{} {:?}", r.time, r.node.0, r.kind))
        .collect()
}

#[test]
fn pinned_scenario_is_deterministic() {
    assert_eq!(
        run_pinned_scenario(),
        run_pinned_scenario(),
        "two runs of the same seeded scenario must produce identical traces"
    );
}

#[test]
fn pinned_scenario_matches_golden_trace() {
    let got = run_pinned_scenario();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/failstorm_trace.txt");
        let mut out = got.join("\n");
        out.push('\n');
        std::fs::write(path, out).expect("write golden file");
        return;
    }
    let want: Vec<String> = GOLDEN.lines().map(str::to_owned).collect();
    // Point at the first divergence before dumping the full diff — a
    // plain Vec compare on hundreds of lines is unreadable.
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            g, w,
            "trace diverges at line {} (run UPDATE_GOLDEN=1 to refresh after an intentional change)",
            i + 1
        );
    }
    assert_eq!(
        got.len(),
        want.len(),
        "trace length changed: got {} lines, golden has {}",
        got.len(),
        want.len()
    );
}
