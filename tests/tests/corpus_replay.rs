//! Replay the pinned regression corpus: every scenario under
//! `tests/scenarios/corpus/` is run through the STRESS oracle and held
//! to the verdict pinned in its `expect` block — hard/boundary
//! signatures exactly, metric checks as written.
//!
//! The corpus has two kinds of entries, distinguished by file name:
//!
//! * hand-ported scenarios (from the former inline fault/lossy tests) —
//!   human-chosen points with tight metric pins;
//! * `stress-*` entries — minimized boundary-point reproducers emitted
//!   by the `stress` explorer (`cargo run -p scmp-bench --bin stress`).
//!
//! New search runs append; nothing here is ever edited by hand except
//! to retire a scenario together with the protocol change that
//! invalidated it.

use scmp_bench::stress::CorpusEntry;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/corpus"))
}

fn corpus_files() -> Vec<PathBuf> {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.expect("read corpus dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "regression corpus must not be empty");
    files
}

#[test]
fn every_corpus_entry_replays_to_its_pinned_verdict() {
    for path in corpus_files() {
        let body =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let entry = CorpusEntry::parse(&body).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert_eq!(
            entry.name,
            stem,
            "{}: entry name must match the file stem",
            path.display()
        );
        entry
            .replay()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

/// The explorer must have contributed at least one minimized
/// boundary-point reproducer (the tentpole's acceptance pin) — the
/// corpus is not only hand-ported history.
#[test]
fn corpus_contains_a_search_found_boundary_point() {
    let found = corpus_files().iter().any(|p| {
        p.file_stem()
            .is_some_and(|s| s.to_string_lossy().starts_with("stress-"))
    });
    assert!(
        found,
        "no stress-* entry in the corpus: run `cargo run -p scmp-bench --bin stress` to pin one"
    );
}
