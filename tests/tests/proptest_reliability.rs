//! Property tests for the reliable-multicast tier's determinism
//! contract.
//!
//! The NACK suppression timer is the one place the tier injects
//! "randomness" (receivers de-synchronise their NACKs so a shared loss
//! does not implode the upstream router). That randomness must be a
//! pure seeded hash — never a thread-local RNG or iteration-order
//! artifact — or parallel sweep workers would produce different NACK
//! schedules than serial runs and every golden trace would rot. Two
//! layers of defence here:
//!
//! 1. the jitter hash itself is a pure function of its five inputs;
//! 2. whole reliability-on lossy runs are byte-identical between
//!    `--jobs 1` and `--jobs 2`, summaries and JSONL traces both.

use proptest::prelude::*;
use scmp_bench::scenario_file::{check_unknown_keys, run_batch};
use scmp_core::router::nack_jitter;
use scmp_net::NodeId;
use scmp_sim::GroupId;

/// A fig-5-shaped lossy scenario with the reliability tier on.
fn reliable_scenario(seed: u64, loss_pct: u8, nack_delay: u64, nack_jitter: u64) -> String {
    let loss = f64::from(loss_pct) / 100.0;
    format!(
        r#"{{
  "topology": {{ "kind": "custom", "nodes": 6, "links": [
    [0, 1, 3, 6], [0, 2, 4, 5], [0, 3, 2, 6],
    [1, 2, 3, 2], [1, 4, 9, 3], [2, 3, 4, 1], [2, 5, 7, 2]
  ]}},
  "m_router": 0,
  "robustness": {{ "join_retry": 500, "leave_retry": 500, "tree_retry": 500 }},
  "reliability": {{ "nack_delay": {nack_delay}, "nack_jitter": {nack_jitter}, "seed": {seed} }},
  "channel": {{ "seed": {seed}, "default": {{ "drop": {loss} }} }},
  "events": [
    {{ "time": 0, "node": 4, "op": "join", "group": 1 }},
    {{ "time": 1000, "node": 3, "op": "join", "group": 1 }},
    {{ "time": 2000, "node": 5, "op": "join", "group": 1 }},
    {{ "time": 50000, "node": 1, "op": "send", "group": 1, "tag": 1 }},
    {{ "time": 55000, "node": 1, "op": "send", "group": 1, "tag": 2 }},
    {{ "time": 60000, "node": 1, "op": "send", "group": 1, "tag": 3 }},
    {{ "time": 65000, "node": 1, "op": "send", "group": 1, "tag": 4 }}
  ],
  "run_until": 120000
}}"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The suppression-jitter hash is a pure function: same five inputs,
    /// same output, regardless of evaluation order or repetition — and
    /// it actually spreads over the attempt axis (a constant hash would
    /// re-synchronise every receiver's retry, defeating suppression).
    #[test]
    fn nack_jitter_is_pure_and_attempt_sensitive(
        seed in any::<u64>(),
        me in 0u32..1024,
        group in 0u32..64,
        origin in 0u32..1024,
        attempt in 0u32..8,
    ) {
        let a = nack_jitter(seed, NodeId(me), GroupId(group), NodeId(origin), attempt);
        let b = nack_jitter(seed, NodeId(me), GroupId(group), NodeId(origin), attempt);
        prop_assert_eq!(a, b, "hash must be pure");
        let spread: std::collections::BTreeSet<u64> = (0..8)
            .map(|k| nack_jitter(seed, NodeId(me), GroupId(group), NodeId(origin), k))
            .collect();
        prop_assert!(spread.len() > 1, "attempts must de-synchronise");
    }
}

proptest! {
    // Each case runs the scenario three times (jobs 1, jobs 2, replay),
    // so keep the case count modest — this is a smoke property, the
    // exhaustive byte-identity guard is the corpus replay in `regress`.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Reliability-on lossy runs are byte-identical across worker
    /// counts and across repeated runs: summary JSON and captured JSONL
    /// trace both. This is the replay-stability contract for the NACK
    /// suppression timers — any hidden nondeterminism in gap detection,
    /// jitter, PIT state, or cache eviction shows up here as a diff.
    #[test]
    fn reliable_runs_are_jobs_invariant(
        seed in 0u64..64,
        loss_pct in 1u8..=20,
        nack_delay in 100u64..600,
        nack_jitter in 0u64..400,
    ) {
        let json = reliable_scenario(seed, loss_pct, nack_delay, nack_jitter);
        prop_assert!(check_unknown_keys(&json).is_ok());
        let jsons = [json.clone(), json];
        let serial = run_batch(&jsons, 1);
        let parallel = run_batch(&jsons, 2);
        for (s, p) in serial.iter().zip(&parallel) {
            let (sr, st) = s.as_ref().map_err(|e| TestCaseError::fail(e.clone()))?;
            let (pr, pt) = p.as_ref().map_err(|e| TestCaseError::fail(e.clone()))?;
            prop_assert_eq!(
                serde_json::to_string(sr).unwrap(),
                serde_json::to_string(pr).unwrap(),
                "summary must not depend on --jobs"
            );
            prop_assert_eq!(st, pt, "JSONL trace must not depend on --jobs");
        }
        // The two identical cells must also agree with each other —
        // replay stability within one batch.
        let (a, _) = serial[0].as_ref().unwrap();
        let (b, _) = serial[1].as_ref().unwrap();
        prop_assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap()
        );
    }
}
