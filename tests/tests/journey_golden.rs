//! Golden journey snapshots: causal chains reconstructed from the
//! committed JSONL traces, pinned byte-for-byte.
//!
//! Two sources, two shapes of causality:
//!
//! * the fault-storm golden pins the control-plane chains — every
//!   JOIN → BRANCH/TREE → ACK → first-delivery transaction — plus the
//!   hop-by-hop journey of each data payload;
//! * the lossy golden (15% control-plane loss) pins a journey that
//!   contains a retransmission: the chain shows the drop, the retry
//!   timer's resend, and the eventual acknowledgement.
//!
//! Refresh after an intentional protocol change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p scmp-integration --test journey_golden
//! ```
//!
//! and review the diff like code — a changed journey IS a changed
//! protocol conversation.

use scmp_telemetry::Trace;
use std::fmt::Write as _;

const FAILSTORM: &str = include_str!("../golden/failstorm_events.jsonl");
const LOSSY: &str = include_str!("../golden/lossy_events.jsonl");
const GOLDEN: &str = include_str!("../golden/journeys.txt");

/// The snapshot: join chains and data journeys from the fault storm,
/// then every retransmission-bearing journey from the lossy trace.
fn render_journeys() -> String {
    let mut out = String::new();

    let storm = Trace::parse(FAILSTORM).expect("failstorm golden parses");
    for group in storm.groups() {
        let _ = writeln!(out, "=== failstorm: join chains g{group} ===");
        out.push_str(&storm.joins_report(group));
        for tag in storm.journey_tags(group) {
            let j = storm.journey(group, tag);
            if !j.is_empty() {
                let _ = writeln!(out, "=== failstorm: journey g{group} tag {tag} ===");
                out.push_str(&j.report());
            }
        }
    }

    let lossy = Trace::parse(LOSSY).expect("lossy golden parses");
    for group in lossy.groups() {
        for tag in lossy.journey_tags(group) {
            let j = lossy.journey(group, tag);
            let report = j.report();
            if report.contains("retransmit") {
                let _ = writeln!(
                    out,
                    "=== lossy: retransmission journey g{group} tag {tag} ==="
                );
                out.push_str(&report);
            }
        }
    }
    out
}

#[test]
fn journeys_match_golden_snapshot() {
    let got = render_journeys();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/journeys.txt");
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    for (i, (g, w)) in got.lines().zip(GOLDEN.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "journey snapshot diverges at line {} (UPDATE_GOLDEN=1 to refresh)",
            i + 1
        );
    }
    assert_eq!(
        got.lines().count(),
        GOLDEN.lines().count(),
        "journey snapshot length changed"
    );
}

/// Reconstruction is deterministic: rendering twice from a fresh parse
/// is byte-identical (the report order is dispatch order, not hash
/// order).
#[test]
fn journey_reconstruction_is_byte_stable() {
    assert_eq!(render_journeys(), render_journeys());
}

/// The fault-storm chains cover the full control causality the issue
/// names: JOIN, the BRANCH (or TREE) that grafts the member, and the
/// first delivery that proves the graft carried data.
#[test]
fn join_chains_reach_first_delivery() {
    let storm = Trace::parse(FAILSTORM).expect("failstorm golden parses");
    let report = storm.joins_report(1);
    assert!(report.contains("join"), "{report}");
    assert!(
        report.contains("branch") || report.contains("tree"),
        "{report}"
    );
    assert!(report.contains("first_delivery"), "{report}");
}

/// The data journeys are multi-hop: a payload from the source crosses
/// intermediate routers before its local delivery at a member.
#[test]
fn data_journeys_are_multi_hop() {
    let storm = Trace::parse(FAILSTORM).expect("failstorm golden parses");
    let j = storm.journey(1, 1);
    assert!(!j.is_empty(), "data journey for tag 1 missing");
    let report = j.report();
    assert!(report.contains("send"), "{report}");
    assert!(report.contains("deliver_local"), "{report}");
    // More than one distinct router appears along the chain.
    let hops = report.matches("deliver").count();
    assert!(hops >= 2, "journey is not multi-hop:\n{report}");
}

/// The lossy golden contains at least one journey with a
/// retransmission, and the same journey records the loss that caused
/// it — the drop and the retry are correlated by one trace key.
#[test]
fn lossy_trace_has_a_retransmission_journey() {
    let lossy = Trace::parse(LOSSY).expect("lossy golden parses");
    let mut found = false;
    for group in lossy.groups() {
        for tag in lossy.journey_tags(group) {
            let report = lossy.journey(group, tag).report();
            if report.contains("retransmit") {
                found = true;
                assert!(
                    report.contains("drop") || report.contains("channel"),
                    "retransmission journey shows no loss:\n{report}"
                );
            }
        }
    }
    assert!(found, "no retransmission journey in the lossy golden");
}
