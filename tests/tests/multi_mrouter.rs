//! The §II-A multi-m-router extension: "An ISP may own more than one
//! m-routers in the Internet for serving its customers in different
//! geographic regions ... our approach can be easily extended to
//! multiple m-routers per domain."
//!
//! Groups are assigned round-robin over the configured m-router set;
//! each m-router owns its groups' trees, membership and accounting.

use scmp_core::router::{ScmpConfig, ScmpRouter};
use scmp_integration::scenario;
use scmp_net::NodeId;
use scmp_protocols::build_scmp_engine;
use scmp_sim::{AppEvent, Engine, GroupId};

fn engine_with_two_mrouters(seed: u64) -> (Engine<ScmpRouter>, Vec<NodeId>) {
    let sc = scenario(seed, 25, 0);
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.extra_m_routers = vec![NodeId(1)];
    let e = build_scmp_engine(sc.topo.clone(), cfg);
    let pool: Vec<NodeId> = sc.topo.nodes().filter(|v| v.0 >= 2).collect();
    (e, pool)
}

#[test]
fn groups_are_partitioned_across_m_routers() {
    let (mut e, pool) = engine_with_two_mrouters(1);
    // Even gid -> m-router 0, odd gid -> m-router 1.
    let g_even = GroupId(2);
    let g_odd = GroupId(3);
    e.schedule_app(0, pool[0], AppEvent::Join(g_even));
    e.schedule_app(0, pool[1], AppEvent::Join(g_odd));
    e.run_to_quiescence();

    let m0 = e
        .router(NodeId(0))
        .m_state()
        .expect("node 0 is an m-router");
    let m1 = e
        .router(NodeId(1))
        .m_state()
        .expect("node 1 is an m-router");
    assert!(m0.tree(g_even).is_some(), "even group served by m-router 0");
    assert!(m0.tree(g_odd).is_none(), "odd group not at m-router 0");
    assert!(m1.tree(g_odd).is_some(), "odd group served by m-router 1");
    assert!(m1.tree(g_even).is_none());
    // Accounting is likewise partitioned.
    assert_eq!(m0.sessions.log().len(), 1);
    assert_eq!(m1.sessions.log().len(), 1);
}

#[test]
fn both_m_routers_deliver_their_groups() {
    let (mut e, pool) = engine_with_two_mrouters(2);
    let g_even = GroupId(4);
    let g_odd = GroupId(5);
    let members_even = [pool[0], pool[2], pool[4]];
    let members_odd = [pool[1], pool[3], pool[5]];
    let mut t = 0;
    for &m in &members_even {
        e.schedule_app(t, m, AppEvent::Join(g_even));
        t += 1_000;
    }
    for &m in &members_odd {
        e.schedule_app(t, m, AppEvent::Join(g_odd));
        t += 1_000;
    }
    let src = pool[10];
    e.schedule_app(
        t + 500_000,
        src,
        AppEvent::Send {
            group: g_even,
            tag: 1,
        },
    );
    e.schedule_app(
        t + 500_000,
        src,
        AppEvent::Send {
            group: g_odd,
            tag: 2,
        },
    );
    e.run_to_quiescence();

    for &m in &members_even {
        assert_eq!(e.stats().delivery_count(g_even, 1, m), 1, "{m:?}");
        assert_eq!(e.stats().delivery_count(g_odd, 2, m), 0, "{m:?} isolation");
    }
    for &m in &members_odd {
        assert_eq!(e.stats().delivery_count(g_odd, 2, m), 1, "{m:?}");
        assert_eq!(e.stats().delivery_count(g_even, 1, m), 0, "{m:?} isolation");
    }
    assert!(!e.stats().has_duplicate_deliveries());
}

#[test]
fn trees_are_rooted_at_their_own_m_router() {
    let (mut e, pool) = engine_with_two_mrouters(3);
    let g_odd = GroupId(7);
    e.schedule_app(0, pool[0], AppEvent::Join(g_odd));
    e.run_to_quiescence();
    let m1 = e.router(NodeId(1)).m_state().unwrap();
    let tree = m1.tree(g_odd).unwrap();
    assert_eq!(tree.root(), NodeId(1));
    // The member's physical entry chains back to m-router 1, not 0.
    let mut cur = pool[0];
    let mut hops = 0;
    while let Some(entry) = e.router(cur).entry(g_odd) {
        match entry.upstream {
            Some(up) => {
                cur = up;
                hops += 1;
                assert!(hops < 30, "loop");
            }
            None => break,
        }
    }
    assert_eq!(cur, NodeId(1));
}

#[test]
#[should_panic(expected = "hot standby is only supported")]
fn standby_plus_multi_mrouter_rejected() {
    let sc = scenario(4, 10, 0);
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.extra_m_routers = vec![NodeId(1)];
    cfg.standby = Some(NodeId(2));
    let _e = build_scmp_engine(sc.topo.clone(), cfg);
}
