//! Telemetry integration: golden JSONL snapshot, sink-parity, and the
//! inspector replaying engine statistics from a trace file alone.
//!
//! The golden file pins the *structured* event stream of the same
//! fault-storm scenario `golden_trace.rs` pins in legacy form — with
//! gauge sampling on, so the schema of every event kind is exercised.
//! Refresh after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p scmp-integration --test telemetry
//! ```

use scmp_core::router::{ScmpConfig, ScmpRouter};
use scmp_integration::G;
use scmp_net::topology::examples::fig5;
use scmp_net::NodeId;
use scmp_protocols::build_scmp_engine;
use scmp_sim::{AppEvent, Engine, FaultKind, FaultPlan, NullSink, RingSink};
use scmp_telemetry::{encode_events, Trace};

const GOLDEN: &str = include_str!("../golden/failstorm_events.jsonl");

enum Sink {
    Default,
    Null,
    Ring,
}

/// The pinned fault-storm scenario (same timeline as `golden_trace.rs`)
/// with the chosen sink installed and the gauge sampler on.
fn run_pinned_scenario(sink: Sink) -> Engine<ScmpRouter> {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.repair_interval = 2_000;
    cfg.join_retry = 5_000;
    cfg.leave_retry = 5_000;
    let mut e = build_scmp_engine(fig5(), cfg);
    match sink {
        Sink::Default => {}
        Sink::Null => e.set_sink(Box::new(NullSink)),
        Sink::Ring => e.set_sink(Box::new(RingSink::new(1 << 16))),
    }
    e.set_gauge_interval(10_000);

    for (t, n) in [(0u64, 4u32), (1_000, 3), (2_000, 5)] {
        e.schedule_app(t, NodeId(n), AppEvent::Join(G));
    }
    let plan = FaultPlan::new()
        .at(20_000, FaultKind::LinkDown { a: 0, b: 2 })
        .at(40_000, FaultKind::RouterCrash { node: 4 })
        .at(50_000, FaultKind::RouterRecover { node: 4 })
        .at(60_000, FaultKind::LinkUp { a: 0, b: 2 });
    e.schedule_fault_plan(&plan);
    e.schedule_app(51_000, NodeId(4), AppEvent::Join(G));
    for (tag, t) in [(1u64, 10_000u64), (2, 30_000), (3, 55_000), (4, 70_000)] {
        e.schedule_app(t, NodeId(1), AppEvent::Send { group: G, tag });
    }
    e.run_until(80_000);
    e
}

#[test]
fn pinned_scenario_matches_golden_jsonl() {
    let mut e = run_pinned_scenario(Sink::Ring);
    e.flush_telemetry();
    let got = encode_events(&e.events());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/failstorm_events.jsonl");
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    for (i, (g, w)) in got.lines().zip(GOLDEN.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "JSONL trace diverges at line {} (UPDATE_GOLDEN=1 to refresh)",
            i + 1
        );
    }
    assert_eq!(
        got.lines().count(),
        GOLDEN.lines().count(),
        "trace length changed"
    );
}

/// Telemetry observes, never steers: the default (telemetry off), an
/// explicit `NullSink`, and a recording `RingSink` all leave the
/// simulation itself bit-identical. Journey stamping (trace keys in
/// every packet header, tree-health probes, drop keying) must not
/// shift a single dispatch whether or not a sink is watching — the
/// dispatch count and the queue's high-water mark are compared exactly
/// alongside the full stats report.
#[test]
fn sinks_do_not_perturb_the_simulation() {
    let base = run_pinned_scenario(Sink::Default);
    let null = run_pinned_scenario(Sink::Null);
    let ring = run_pinned_scenario(Sink::Ring);
    for other in [&null, &ring] {
        let (a, b) = (base.stats(), other.stats());
        assert_eq!(a.data_overhead, b.data_overhead);
        assert_eq!(a.protocol_overhead, b.protocol_overhead);
        assert_eq!(a.max_end_to_end_delay, b.max_end_to_end_delay);
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.max_repair_latency, b.max_repair_latency);
        assert_eq!(a.report(), b.report());
        assert_eq!(
            base.peak_queue_depth(),
            other.peak_queue_depth(),
            "a sink changed the event queue's shape"
        );
    }
    // The disabled paths record nothing; the ring records everything.
    assert!(base.events().is_empty());
    assert!(null.events().is_empty());
    assert!(!ring.events().is_empty());
}

/// The inspector recomputes the engine's own histograms and delivery
/// picture purely from the exported event stream.
#[test]
fn inspector_replays_engine_statistics_from_the_trace() {
    let e = run_pinned_scenario(Sink::Ring);
    let trace = Trace::from_events(e.events());
    let stats = e.stats();

    let hists = trace.histograms();
    assert_eq!(hists.e2e_delay.count(), stats.e2e_delay_hist.count());
    assert_eq!(hists.e2e_delay.max(), stats.e2e_delay_hist.max());
    assert_eq!(hists.e2e_delay.p50(), stats.e2e_delay_hist.p50());
    assert_eq!(hists.e2e_delay.p99(), stats.e2e_delay_hist.p99());
    assert_eq!(hists.repair.count(), stats.repair_hist.count());
    assert_eq!(hists.repair.max(), stats.repair_hist.max());
    assert_eq!(hists.repair.max(), stats.max_repair_latency);

    // Convergence: every send reached the members alive at send time.
    let conv = trace.convergence(G.0);
    assert_eq!(conv.points.len(), 4);
    for p in &conv.points {
        assert!(
            p.converged_at.is_some(),
            "tag {} never converged: {:?}",
            p.tag,
            p
        );
    }
}

/// The committed golden trace itself audits clean: no duplicate
/// delivery, and all loss is explained by recorded drops/faults.
#[test]
fn golden_trace_audits_clean() {
    let trace = Trace::parse(GOLDEN).expect("golden JSONL parses");
    let audit = trace.audit();
    assert!(audit.passed(), "golden audit failed:\n{}", audit.report());
    assert_eq!(audit.sends, 4);
    assert!(audit.faults >= 4, "all four injected faults recorded");
    // Gauge samples survived the round trip.
    assert!(!trace.gauges().is_empty());
}
