//! Wire-codec integration: every packet the SCMP protocol actually puts
//! on the air survives an encode/decode roundtrip bit-exactly.
//!
//! A wrapper router serialises and deserialises each received packet
//! with `scmp_core::wire` before handing it to the real state machine,
//! so a full protocol run (joins, restructure, data, leaves, failover
//! messages) doubles as an exhaustive codec conformance test on
//! realistic traffic.

use bytes::Bytes;
use scmp_core::router::{ReliabilityConfig, ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_core::wire::{Frame, WireError};
use scmp_core::{wire, ScmpMsg};
use scmp_integration::{scenario, G};
use scmp_net::topology::examples::fig5;
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Ctx, Engine, Packet, Router};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static PACKETS_CHECKED: AtomicU64 = AtomicU64::new(0);

struct WireChecked {
    inner: ScmpRouter,
}

impl Router for WireChecked {
    type Msg = ScmpMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        self.inner.on_start(ctx);
    }

    fn on_packet(&mut self, from: NodeId, pkt: Packet<ScmpMsg>, ctx: &mut Ctx<'_, ScmpMsg>) {
        let decoded = wire::decode(wire::encode(&pkt)).expect("wire roundtrip decodes");
        assert_eq!(decoded.body, pkt.body, "body mangled on the wire");
        assert_eq!(decoded.group, pkt.group);
        assert_eq!(decoded.tag, pkt.tag);
        assert_eq!(decoded.created_at, pkt.created_at);
        assert_eq!(decoded.class, pkt.class, "class must be derivable");
        PACKETS_CHECKED.fetch_add(1, Ordering::Relaxed);
        // Hand the *decoded* packet onward: the protocol must work off
        // the wire image, not the in-memory original.
        self.inner.on_packet(from, decoded, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, ScmpMsg>) {
        self.inner.on_timer(token, ctx);
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, ScmpMsg>) {
        self.inner.on_app(ev, ctx);
    }
}

#[test]
fn full_protocol_run_over_the_wire() {
    let sc = scenario(21, 25, 8);
    let mut cfg = ScmpConfig::new(NodeId(0));
    // Exercise the failover message types too.
    cfg.standby = Some(NodeId(1));
    cfg.heartbeat_interval = 50_000;
    let domain = ScmpDomain::new(sc.topo.clone(), cfg);
    let mut e = Engine::new(sc.topo.clone(), move |me, _, _| WireChecked {
        inner: ScmpRouter::new(me, Arc::clone(&domain)),
    });
    let members: Vec<NodeId> = sc
        .members
        .iter()
        .copied()
        .filter(|&m| m != NodeId(1))
        .collect();
    let mut t = 0;
    for &m in &members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 1_000;
    }
    e.schedule_app(t + 500_000, sc.source, AppEvent::Send { group: G, tag: 1 });
    // Leave only after the payload has fully propagated (Waxman path
    // delays reach several hundred thousand ticks).
    t += 2_000_000;
    for &m in &members {
        e.schedule_app(t, m, AppEvent::Leave(G));
        t += 1_000;
    }
    e.run_until(t + 3_000_000);

    for &m in &members {
        assert_eq!(e.stats().delivery_count(G, 1, m), 1, "{m:?}");
    }
    let checked = PACKETS_CHECKED.load(Ordering::Relaxed);
    assert!(
        checked > 50,
        "expected a realistic packet mix on the wire, saw {checked}"
    );
}

/// FNV-1a, re-implemented here so the test can re-stamp a mangled
/// frame's trailing checksum exactly the way a newer-version sender
/// would (the codec keeps its own hasher private on purpose).
fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

static FRAMES_SEEN: AtomicU64 = AtomicU64::new(0);
static FRAMES_MANGLED: AtomicU64 = AtomicU64::new(0);

/// A router whose inbound link deterministically rewrites every 8th
/// frame's message-kind byte to an unassigned value (200) and re-stamps
/// the checksum — the shape of traffic from a newer protocol revision,
/// not line noise. The receiver must treat such frames as counted,
/// telemetry-visible drops, never as decode errors or panics.
struct FutureKind {
    inner: ScmpRouter,
}

impl Router for FutureKind {
    type Msg = ScmpMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        self.inner.on_start(ctx);
    }

    fn on_packet(&mut self, from: NodeId, pkt: Packet<ScmpMsg>, ctx: &mut Ctx<'_, ScmpMsg>) {
        let n = FRAMES_SEEN.fetch_add(1, Ordering::Relaxed);
        let encoded = wire::encode(&pkt);
        if n % 8 == 3 {
            // A future sender: unknown kind byte, valid checksum.
            let mut raw = encoded.to_vec();
            raw[3] = 200;
            let body_end = raw.len() - 4;
            let c = fnv32(&raw[..body_end]);
            raw[body_end..].copy_from_slice(&c.to_be_bytes());
            match wire::decode_frame(Bytes::from(raw)) {
                Ok(Frame::UnknownKind { kind, .. }) => assert_eq!(kind, 200),
                other => panic!("future-kind frame must skip, got {other:?}"),
            }
            // The same rewrite without the re-stamp is indistinguishable
            // from line noise and must fail the checksum instead.
            let mut noisy = encoded.to_vec();
            noisy[3] = 200;
            assert_eq!(
                wire::decode_frame(Bytes::from(noisy)),
                Err(WireError::BadChecksum),
                "kind corruption without a checksum re-stamp must not pass"
            );
            ctx.drop_unknown_kind();
            FRAMES_MANGLED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let decoded = wire::decode(encoded).expect("wire roundtrip decodes");
        self.inner.on_packet(from, decoded, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, ScmpMsg>) {
        self.inner.on_timer(token, ctx);
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, ScmpMsg>) {
        self.inner.on_app(ev, ctx);
    }
}

/// Satellite regression for the unknown-kind decode path, end to end:
/// with every 8th frame rewritten to a future message kind, the run
/// must finish with full delivery — control losses healed by the retry
/// machinery, data losses by the NACK/repair tier — and the stats must
/// account for every mangled frame as an `unknown_kind` drop.
#[test]
fn unknown_kind_frames_are_counted_drops_not_decode_errors() {
    let topo = fig5();
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.join_retry = 500;
    cfg.leave_retry = 500;
    cfg.tree_retry = 500;
    cfg.reliability = Some(ReliabilityConfig::default());
    let domain = ScmpDomain::new(topo.clone(), cfg);
    let mut e = Engine::new(topo, move |me, _, _| FutureKind {
        inner: ScmpRouter::new(me, Arc::clone(&domain)),
    });

    let members = [NodeId(3), NodeId(4), NodeId(5)];
    let mut t = 0;
    for &m in &members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 1_000;
    }
    // Node 1 never joins: the sends take the off-tree encapsulation leg.
    for tag in 1..=5u64 {
        e.schedule_app(
            40_000 + tag * 5_000,
            NodeId(1),
            AppEvent::Send { group: G, tag },
        );
    }
    e.run_until(400_000);

    let mangled = FRAMES_MANGLED.load(Ordering::Relaxed);
    assert!(mangled > 0, "the rewriter never fired");
    assert_eq!(
        e.stats().unknown_kind_drops,
        mangled,
        "every future-kind frame must surface as a counted drop"
    );
    for &m in &members {
        for tag in 1..=5u64 {
            assert_eq!(
                e.stats().delivery_count(G, tag, m),
                1,
                "payload {tag} at {m:?} (drops healed by retry + NACK recovery)"
            );
        }
    }
}
