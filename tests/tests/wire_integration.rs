//! Wire-codec integration: every packet the SCMP protocol actually puts
//! on the air survives an encode/decode roundtrip bit-exactly.
//!
//! A wrapper router serialises and deserialises each received packet
//! with `scmp_core::wire` before handing it to the real state machine,
//! so a full protocol run (joins, restructure, data, leaves, failover
//! messages) doubles as an exhaustive codec conformance test on
//! realistic traffic.

use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_core::{wire, ScmpMsg};
use scmp_integration::{scenario, G};
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Ctx, Engine, Packet, Router};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static PACKETS_CHECKED: AtomicU64 = AtomicU64::new(0);

struct WireChecked {
    inner: ScmpRouter,
}

impl Router for WireChecked {
    type Msg = ScmpMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ScmpMsg>) {
        self.inner.on_start(ctx);
    }

    fn on_packet(&mut self, from: NodeId, pkt: Packet<ScmpMsg>, ctx: &mut Ctx<'_, ScmpMsg>) {
        let decoded = wire::decode(wire::encode(&pkt)).expect("wire roundtrip decodes");
        assert_eq!(decoded.body, pkt.body, "body mangled on the wire");
        assert_eq!(decoded.group, pkt.group);
        assert_eq!(decoded.tag, pkt.tag);
        assert_eq!(decoded.created_at, pkt.created_at);
        assert_eq!(decoded.class, pkt.class, "class must be derivable");
        PACKETS_CHECKED.fetch_add(1, Ordering::Relaxed);
        // Hand the *decoded* packet onward: the protocol must work off
        // the wire image, not the in-memory original.
        self.inner.on_packet(from, decoded, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, ScmpMsg>) {
        self.inner.on_timer(token, ctx);
    }

    fn on_app(&mut self, ev: AppEvent, ctx: &mut Ctx<'_, ScmpMsg>) {
        self.inner.on_app(ev, ctx);
    }
}

#[test]
fn full_protocol_run_over_the_wire() {
    let sc = scenario(21, 25, 8);
    let mut cfg = ScmpConfig::new(NodeId(0));
    // Exercise the failover message types too.
    cfg.standby = Some(NodeId(1));
    cfg.heartbeat_interval = 50_000;
    let domain = ScmpDomain::new(sc.topo.clone(), cfg);
    let mut e = Engine::new(sc.topo.clone(), move |me, _, _| WireChecked {
        inner: ScmpRouter::new(me, Arc::clone(&domain)),
    });
    let members: Vec<NodeId> = sc
        .members
        .iter()
        .copied()
        .filter(|&m| m != NodeId(1))
        .collect();
    let mut t = 0;
    for &m in &members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 1_000;
    }
    e.schedule_app(t + 500_000, sc.source, AppEvent::Send { group: G, tag: 1 });
    // Leave only after the payload has fully propagated (Waxman path
    // delays reach several hundred thousand ticks).
    t += 2_000_000;
    for &m in &members {
        e.schedule_app(t, m, AppEvent::Leave(G));
        t += 1_000;
    }
    e.run_until(t + 3_000_000);

    for &m in &members {
        assert_eq!(e.stats().delivery_count(G, 1, m), 1, "{m:?}");
    }
    let checked = PACKETS_CHECKED.load(Ordering::Relaxed);
    assert!(
        checked > 50,
        "expected a realistic packet mix on the wire, saw {checked}"
    );
}
