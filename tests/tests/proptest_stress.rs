//! Property tests for the STRESS generator / scenario-schema contract:
//! whatever point the search can visit, the generated scenario must
//! survive strict schema validation and the JSON round trip must be
//! lossless — a generator/schema drift here would make pinned corpus
//! reproducers diverge from what the search actually ran.

use proptest::prelude::*;
use scmp_bench::scenario_file::{check_unknown_keys, expected_deliveries, ScenarioFile};
use scmp_bench::stress::{synthesize, synthesize_json, StressPoint, ARPANET, FIG5, SENDS};

fn point(
    topo: u8,
    seed: u64,
    knobs: (u8, u8, u8, u8),
    crash: bool,
    sched: (u8, u8, u8, u8),
    families: (u8, u8),
) -> StressPoint {
    StressPoint {
        topo,
        seed,
        loss: knobs.0,
        dup: knobs.1,
        reorder: knobs.2,
        flaps: knobs.3,
        crash,
        churn: sched.0,
        retry: sched.1,
        repair: sched.2,
        tolerance: sched.3,
        partition: families.0,
        outage: families.1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// generator → JSON → `scenario_file` parse → JSON is the identity,
    /// and every generated scenario passes strict unknown-key
    /// validation.
    #[test]
    fn generated_scenarios_round_trip_and_validate(
        topo in FIG5..=ARPANET,
        seed in 0u64..64,
        knobs in (0u8..16, 0u8..6, 0u8..5, 0u8..5),
        crash in any::<bool>(),
        sched in (0u8..5, 0u8..5, 0u8..5, 0u8..6),
        families in (0u8..4, 0u8..4),
    ) {
        let p = point(topo, seed, knobs, crash, sched, families);
        let json = synthesize_json(&p);
        prop_assert!(
            check_unknown_keys(&json).is_ok(),
            "generated scenario failed schema validation: {:?}",
            check_unknown_keys(&json)
        );
        let parsed: ScenarioFile = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::fail(format!("parse: {e}")))?;
        let reserialized = serde_json::to_string(&parsed)
            .map_err(|e| TestCaseError::fail(format!("serialize: {e}")))?;
        prop_assert_eq!(&reserialized, &json, "round trip must be lossless");
    }

    /// The synthesized timeline always owes every payload to somebody:
    /// churn cycles leave *and* rejoin, so at each of the [`SENDS`]
    /// sends at least one member is subscribed — a scenario whose
    /// delivery expectations are vacuous would make the oracle blind.
    #[test]
    fn generated_timelines_keep_expectations_non_vacuous(
        topo in FIG5..=ARPANET,
        seed in 0u64..64,
        knobs in (0u8..16, 0u8..6, 0u8..5, 0u8..5),
        crash in any::<bool>(),
        sched in (0u8..5, 0u8..5, 0u8..5, 0u8..6),
        families in (0u8..4, 0u8..4),
    ) {
        let p = point(topo, seed, knobs, crash, sched, families);
        let spec = synthesize(&p);
        let (sent, expected) = expected_deliveries(&spec);
        prop_assert_eq!(sent.len() as u64, SENDS);
        let per_send = expected.len() as u64 / SENDS;
        prop_assert!(
            per_send >= 2,
            "every send must be owed to >= 2 members, got {} expectations over {} sends",
            expected.len(),
            SENDS
        );
    }
}
