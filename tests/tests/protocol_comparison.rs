//! Cross-protocol comparisons: the §IV-B claims as executable
//! assertions, over topologies the unit tests don't cover.

use scmp_core::placement;
use scmp_integration::{scenario, G};
use scmp_net::{AllPairsPaths, NodeId, Topology};
use scmp_protocols::{build_engine, ProtocolKind, ProtocolParams};
use scmp_sim::{AppEvent, EngineRunner, SimStats};

// The paper's §IV-B data phase: 30 packets at one per "second", with a
// DVMRP prune lifetime of a few seconds so the flood-prune cycle repeats
// during the run ("floods the packets frequently ... or the timer in a
// leaf router is expired").
const PACKETS: u64 = 30;
const PRUNE_TIMEOUT: u64 = 150_000; // 3 data periods

fn drive(e: &mut dyn EngineRunner, members: &[NodeId], source: NodeId) {
    let mut t = 0;
    for &m in members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 1_000;
    }
    let start = t + 500_000;
    for k in 0..PACKETS {
        e.schedule_app(
            start + k * 50_000,
            source,
            AppEvent::Send {
                group: G,
                tag: k + 1,
            },
        );
    }
    e.run_to_quiescence();
}

fn run_all(topo: &Topology, members: &[NodeId], source: NodeId) -> [SimStats; 4] {
    // The shared-tree protocols get a sensibly placed center (the
    // paper's rule 1), as in the Fig. 8/9 harness.
    let center = placement::min_average_delay(topo, &AllPairsPaths::compute(topo));
    let params = ProtocolParams {
        center,
        dvmrp_prune_timeout: PRUNE_TIMEOUT,
    };
    ProtocolKind::FIG_8_9.map(|kind| {
        let mut e = build_engine(kind, topo, &params);
        drive(e.as_mut(), members, source);
        e.stats().clone()
    })
}

fn assert_full_delivery(stats: &SimStats, members: &[NodeId], label: &str) {
    for &m in members {
        for tag in 1..=PACKETS {
            assert_eq!(
                stats.delivery_count(G, tag, m),
                1,
                "{label}: member {m:?} tag {tag}"
            );
        }
    }
}

#[test]
fn every_protocol_delivers_on_random_topologies() {
    for seed in 0..5 {
        let sc = scenario(seed + 200, 25, 6);
        let [scmp, cbt, dvmrp, mospf] = run_all(&sc.topo, &sc.members, sc.source);
        assert_full_delivery(&scmp, &sc.members, "scmp");
        assert_full_delivery(&cbt, &sc.members, "cbt");
        assert_full_delivery(&dvmrp, &sc.members, "dvmrp");
        assert_full_delivery(&mospf, &sc.members, "mospf");
    }
}

#[test]
fn dvmrp_floods_most_data() {
    let (mut dv, mut sc_tot, mut cb) = (0u64, 0u64, 0u64);
    for seed in 0..4 {
        let sc = scenario(seed + 300, 25, 5);
        let [scmp, cbt, dvmrp, _] = run_all(&sc.topo, &sc.members, sc.source);
        dv += dvmrp.data_overhead;
        sc_tot += scmp.data_overhead;
        cb += cbt.data_overhead;
    }
    assert!(dv > sc_tot, "dvmrp {dv} <= scmp {sc_tot}");
    assert!(dv > cb, "dvmrp {dv} <= cbt {cb}");
}

#[test]
fn flooding_protocols_pay_most_control_bandwidth() {
    let (mut mo, mut dv, mut sc_tot, mut cb) = (0u64, 0u64, 0u64, 0u64);
    for seed in 0..4 {
        let sc = scenario(seed + 400, 25, 8);
        let [scmp, cbt, dvmrp, mospf] = run_all(&sc.topo, &sc.members, sc.source);
        mo += mospf.protocol_overhead;
        dv += dvmrp.protocol_overhead;
        sc_tot += scmp.protocol_overhead;
        cb += cbt.protocol_overhead;
    }
    assert!(mo > sc_tot, "mospf {mo} <= scmp {sc_tot}");
    assert!(mo > cb, "mospf {mo} <= cbt {cb}");
    assert!(dv > cb, "dvmrp {dv} <= cbt {cb}");
}

#[test]
fn cbt_control_at_most_scmp_control() {
    // §IV-B: CBT's ack travels graft→member while SCMP's BRANCH travels
    // m-router→member, so CBT's join machinery is slightly cheaper.
    let mut cbt_total = 0;
    let mut scmp_total = 0;
    for seed in 0..6 {
        let sc = scenario(seed + 500, 25, 8);
        let [scmp, cbt, _, _] = run_all(&sc.topo, &sc.members, sc.source);
        cbt_total += cbt.protocol_overhead;
        scmp_total += scmp.protocol_overhead;
    }
    assert!(
        cbt_total <= scmp_total,
        "cbt {cbt_total} > scmp {scmp_total}"
    );
}

#[test]
fn shared_tree_delay_at_least_source_tree_delay() {
    // Fig. 9: SCMP/CBT detour through the center; MOSPF delivers on the
    // source-rooted SPT, the delay optimum.
    let mut violations = 0;
    for seed in 0..6 {
        let sc = scenario(seed + 600, 25, 6);
        let [scmp, _, _, mospf] = run_all(&sc.topo, &sc.members, sc.source);
        if mospf.max_end_to_end_delay > scmp.max_end_to_end_delay {
            violations += 1;
        }
    }
    assert_eq!(violations, 0, "MOSPF exceeded SCMP delay");
}

#[test]
fn scmp_and_cbt_share_tree_shape_for_single_member() {
    // With a single member the DCDM tree and the CBT branch are both the
    // shortest-delay path, so steady-state data overhead coincides.
    let sc = scenario(777, 25, 1);
    let [scmp, cbt, _, _] = run_all(&sc.topo, &sc.members, sc.source);
    assert_eq!(scmp.data_overhead, cbt.data_overhead);
    assert_eq!(scmp.max_end_to_end_delay, cbt.max_end_to_end_delay);
}
