//! Control-plane robustness under an adversarial channel — the parts
//! the pinned regression corpus cannot express.
//!
//! The takeover/delivery verdicts formerly asserted inline here now
//! live as corpus entries replayed by `corpus_replay.rs`:
//!
//! * `tests/scenarios/corpus/lossy-no-false-takeover.json`
//! * `tests/scenarios/corpus/lossy-crash-takeover.json`
//! * `tests/scenarios/corpus/lossy-spurious-stepdown.json`
//!
//! What stays here: router-internal state after a spurious promotion
//! heals (who each node believes the m-router is, graft flags), the
//! pinned golden JSONL trace, and the fig-scale loss-invariant loop.
//!
//! Every scenario is seeded and deterministic: the channel model draws
//! from per-link RNG streams, so a run that passes here replays
//! bit-for-bit forever.

use scmp_core::router::{ScmpConfig, ScmpRouter};
use scmp_integration::G;
use scmp_net::topology::examples::fig5;
use scmp_net::NodeId;
use scmp_protocols::build_scmp_engine;
use scmp_sim::{
    AppEvent, ChannelModel, ChannelPlan, ChannelSpec, Engine, FaultKind, FaultPlan, RingSink,
};
use scmp_telemetry::{encode_events, Trace};

const MEMBERS: [u32; 3] = [4, 3, 5];

const GOLDEN: &str = include_str!("../golden/lossy_events.jsonl");

/// Fig. 5 engine with the full robustness suite on — hot standby at
/// node 2, fast heartbeats, and every retry knob scaled to the
/// topology's tick-scale delays — plus the standard member set.
fn engine_with_standby(tolerance: u32) -> Engine<ScmpRouter> {
    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.standby = Some(NodeId(2));
    cfg.heartbeat_interval = 500;
    cfg.heartbeat_loss_tolerance = tolerance;
    cfg.takeover_rebuild_delay = 500;
    cfg.join_retry = 500;
    cfg.leave_retry = 500;
    cfg.tree_retry = 500;
    let mut e = build_scmp_engine(fig5(), cfg);
    for (k, m) in MEMBERS.iter().enumerate() {
        e.schedule_app(k as u64 * 1_000, NodeId(*m), AppEvent::Join(G));
    }
    e
}

fn assert_members_grafted(e: &Engine<ScmpRouter>) {
    for m in MEMBERS {
        let entry = e.router(NodeId(m)).entry(G);
        assert!(
            entry.is_some_and(|en| en.local_interface),
            "member {m} never grafted onto the tree"
        );
    }
}

/// Spurious promotion and recovery: isolating the primary (every one of
/// node 0's links down — a single cut won't do, the IGP reconverges
/// unicast routes around it) silences its heartbeats without killing
/// it, so the standby promotes while the primary is alive. When the
/// partition heals, the primary's next heartbeat reaches the promoted
/// standby, which repeats its NewMRouter announcement until the old
/// primary steps down. The per-node beliefs asserted here are invisible
/// to the corpus oracle; the takeover count and delivery ratio for the
/// same schedule are pinned by `lossy-spurious-stepdown.json`.
#[test]
fn old_primary_rejoining_after_spurious_promotion_steps_down() {
    let mut e = engine_with_standby(6);
    let plan = FaultPlan::new()
        .at(20_000, FaultKind::LinkDown { a: 0, b: 1 })
        .at(20_000, FaultKind::LinkDown { a: 0, b: 2 })
        .at(20_000, FaultKind::LinkDown { a: 0, b: 3 })
        .at(60_000, FaultKind::LinkUp { a: 0, b: 1 })
        .at(60_000, FaultKind::LinkUp { a: 0, b: 2 })
        .at(60_000, FaultKind::LinkUp { a: 0, b: 3 });
    plan.validate(e.topo()).unwrap();
    e.schedule_fault_plan(&plan);
    for (tag, t) in [(1u64, 10_000u64), (2, 45_000), (3, 100_000)] {
        e.schedule_app(t, NodeId(1), AppEvent::Send { group: G, tag });
    }
    e.run_until(150_000);

    assert!(
        e.router(NodeId(2)).is_m_router(),
        "promoted standby must stay the m-router"
    );
    assert!(
        !e.router(NodeId(0)).is_m_router(),
        "old primary must step down after hearing the announcement"
    );
    for n in [1u32, 3, 4, 5] {
        assert_eq!(
            e.router(NodeId(n)).m_router_address(),
            NodeId(2),
            "node {n} still believes in the deposed primary"
        );
    }
    assert_members_grafted(&e);
}

/// The pinned lossy scenario: every impairment class enabled at once
/// (drop, duplicate, corrupt, reorder) on a fixed seed, captured as
/// structured telemetry. Pins the channel model's RNG stream layout and
/// the hardened control plane's reaction, line by line. Refresh after
/// an intentional change with:
///
/// ```text
/// UPDATE_GOLDEN=1 cargo test -p scmp-integration --test lossy_control_plane
/// ```
fn run_pinned_lossy_scenario() -> Engine<ScmpRouter> {
    let mut e = engine_with_standby(8);
    e.set_sink(Box::new(RingSink::new(1 << 16)));
    let plan = ChannelPlan {
        seed: 42,
        default: Some(ChannelSpec {
            drop: 0.15,
            duplicate: 0.05,
            corrupt: 0.05,
            reorder_window: 3,
        }),
        links: Vec::new(),
    };
    e.set_channel(ChannelModel::from_plan(&plan).unwrap());
    for (tag, t) in [(1u64, 20_000u64), (2, 30_000), (3, 40_000), (4, 50_000)] {
        e.schedule_app(t, NodeId(1), AppEvent::Send { group: G, tag });
    }
    e.run_until(60_000);
    e
}

#[test]
fn pinned_lossy_scenario_matches_golden_jsonl() {
    let mut e = run_pinned_lossy_scenario();
    e.flush_telemetry();
    let got = encode_events(&e.events());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/lossy_events.jsonl");
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    for (i, (g, w)) in got.lines().zip(GOLDEN.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "lossy JSONL trace diverges at line {} (UPDATE_GOLDEN=1 to refresh)",
            i + 1
        );
    }
    assert_eq!(
        got.lines().count(),
        GOLDEN.lines().count(),
        "trace length changed"
    );
}

/// The committed lossy golden itself audits clean: impairments recorded,
/// no duplicate delivery reaches any member, and every missing delivery
/// is explained by a recorded drop.
#[test]
fn lossy_golden_trace_audits_clean() {
    let trace = Trace::parse(GOLDEN).expect("golden JSONL parses");
    let audit = trace.audit();
    assert!(audit.passed(), "lossy audit failed:\n{}", audit.report());
    assert_eq!(audit.sends, 4);
    assert!(!audit.drops.is_empty(), "channel drops must be recorded");
}

/// The acceptance-criteria invariant suite on the fig-scale topology:
/// at 5% and 15% uniform control-plane loss, every member is eventually
/// grafted, no member hears a payload twice, and the standby never
/// promotes while the primary is alive.
#[test]
fn fig_scale_invariants_hold_at_5_and_15_percent_loss() {
    for loss in [0.05f64, 0.15] {
        for seed in 0..3u64 {
            let mut e = engine_with_standby(12);
            e.set_channel(ChannelModel::uniform_loss(loss, seed));
            for tag in 1..=10u64 {
                e.schedule_app(
                    100_000 + tag * 2_000,
                    NodeId(1),
                    AppEvent::Send { group: G, tag },
                );
            }
            e.run_until(150_000);

            let s = e.stats();
            let tag = format!("(loss={loss}, seed={seed})");
            assert!(s.channel_dropped > 0, "{tag}: channel never dropped");
            assert_eq!(s.takeovers, 0, "{tag}: spurious takeover");
            assert_members_grafted(&e);
            assert!(!s.has_duplicate_deliveries(), "{tag}: duplicate delivery");
            // Ten payloads, three members, ≤ 2 lossy hops each: every
            // member hears at least one even at 15% loss.
            for m in MEMBERS {
                let heard = (1..=10u64).any(|t| s.delivery_ratio([(G, t, NodeId(m))]) == 1.0);
                assert!(heard, "{tag}: member {m} heard no payload at all");
            }
        }
    }
}
