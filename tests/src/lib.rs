//! Shared helpers for the cross-crate integration tests.

use rand::seq::SliceRandom;
use scmp_core::router::{ScmpConfig, ScmpRouter};
use scmp_net::rng::rng_for;
use scmp_net::topology::{waxman, WaxmanConfig};
use scmp_net::{NodeId, Topology};
use scmp_protocols::build_scmp_engine;
use scmp_sim::{AppEvent, Engine, GroupId};

/// The group id used throughout the integration tests.
pub const G: GroupId = GroupId(1);

/// A deterministic random scenario over a connected Waxman topology:
/// node 0 hosts the m-router/core, `group` members are drawn from the
/// rest, and the returned source is a non-member when one exists.
pub struct TestScenario {
    pub topo: Topology,
    pub members: Vec<NodeId>,
    pub source: NodeId,
}

/// Build a scenario for `(seed, n, group)`.
pub fn scenario(seed: u64, n: usize, group: usize) -> TestScenario {
    let mut rng = rng_for("integration", seed);
    let topo = waxman(
        &WaxmanConfig {
            n,
            min_delay_one: true,
            ..WaxmanConfig::default()
        },
        &mut rng,
    );
    let mut pool: Vec<NodeId> = topo.nodes().filter(|v| v.0 != 0).collect();
    pool.shuffle(&mut rng);
    let members: Vec<NodeId> = pool.iter().copied().take(group.min(n - 1)).collect();
    let source = pool
        .iter()
        .copied()
        .find(|v| !members.contains(v))
        .unwrap_or(NodeId(0));
    TestScenario {
        topo,
        members,
        source,
    }
}

/// Build an SCMP engine with the m-router at node 0.
pub fn scmp_engine(topo: Topology) -> Engine<ScmpRouter> {
    build_scmp_engine(topo, ScmpConfig::new(NodeId(0)))
}

/// Schedule staggered joins followed by `packets` sends from `source`.
pub fn drive_joins_then_sends(
    e: &mut Engine<ScmpRouter>,
    members: &[NodeId],
    source: NodeId,
    packets: u64,
) {
    let mut t = 0;
    for &m in members {
        e.schedule_app(t, m, AppEvent::Join(G));
        t += 1_000;
    }
    let start = t + 500_000;
    for k in 0..packets {
        e.schedule_app(
            start + k * 50_000,
            source,
            AppEvent::Send {
                group: G,
                tag: k + 1,
            },
        );
    }
    e.run_to_quiescence();
}
