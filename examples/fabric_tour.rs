//! Tour of the m-router's switching fabric (§II-B, Fig. 3).
//!
//! Shows the Beneš permutation network with its looping-algorithm
//! routing, the connection-component merge network, and the composed
//! PN–CCN–DN sandwich realising simultaneous many-to-many sessions.
//!
//! Run with: `cargo run --example fabric_tour`

use scmp_fabric::{Benes, ConnectionComponentNetwork, GroupRequest, SandwichFabric};

fn main() {
    // --- Beneš network --------------------------------------------------
    println!("== Benes permutation network ==");
    let perm: Vec<usize> = vec![3, 7, 0, 5, 1, 6, 2, 4];
    let benes = Benes::route(&perm);
    println!(
        "size {}, {} crossbar columns, {} 2x2 switches",
        benes.size(),
        benes.depth(),
        benes.switch_count()
    );
    for (i, &target) in perm.iter().enumerate() {
        let out = benes.eval(i);
        println!("  input {i} -> output {out} (requested {target})");
        assert_eq!(out, target);
    }

    // Rearrangeable: any permutation works, including the reversal.
    let rev: Vec<usize> = (0..64).rev().collect();
    let big = Benes::route(&rev);
    assert_eq!(big.permutation(), rev);
    println!("64-port reversal routed through {} columns\n", big.depth());

    // --- Connection component network -----------------------------------
    println!("== Connection component network (CCN) ==");
    let ccn = ConnectionComponentNetwork::configure(8, &[vec![0, 1, 2], vec![4, 5]]).unwrap();
    println!(
        "two merge components over 8 lines, merge depth {}",
        ccn.depth()
    );
    for line in 0..8 {
        println!(
            "  line {line} -> line {} {}",
            ccn.eval(line),
            match ccn.component_of(line) {
                Some(k) => format!("(component {k})"),
                None => "(pass-through)".to_string(),
            }
        );
    }

    // --- The sandwich: simultaneous many-to-many sessions ----------------
    println!("\n== PN-CCN-DN sandwich: three concurrent conferences ==");
    let sessions = [
        GroupRequest {
            sources: vec![0, 9, 4],
            output: 15,
        }, // video conf
        GroupRequest {
            sources: vec![2, 11],
            output: 3,
        }, // e-learning
        GroupRequest {
            sources: vec![6],
            output: 8,
        }, // software push
    ];
    let fabric = SandwichFabric::configure(16, &sessions).unwrap();
    println!(
        "16-port fabric, total depth {} crossbar columns",
        fabric.depth()
    );
    for (k, s) in sessions.iter().enumerate() {
        for &src in &s.sources {
            let out = fabric.eval(src);
            println!("  session {k}: source port {src:>2} -> output port {out}");
            assert_eq!(out, s.output);
        }
    }
    // Isolation check — the §II-B guarantee.
    for port in 0..16 {
        if fabric.group_of_input(port).is_none() {
            let out = fabric.eval(port);
            assert!(
                !sessions.iter().any(|s| s.output == out),
                "idle port leaked into a session"
            );
        }
    }
    println!("\nsources of different groups are never connected — isolation verified.");
}
