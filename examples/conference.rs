//! Many-to-many conferencing — the workload the paper's introduction
//! motivates ("audio/video conferencing ... there may be several
//! multicast connections from different sources to the same multicast
//! group, which can be referred to as many-to-many communication").
//!
//! A 21-node transit–stub domain hosts a conference: every participant
//! is both a member and a speaker. Each participant's packets travel the
//! shared bidirectional tree (on-tree speakers) or tunnel to the
//! m-router (off-tree speakers), and the m-router's sandwich fabric is
//! configured to merge all speaker lines onto the group's output port.
//!
//! Run with: `cargo run --example conference`

use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_fabric::{GroupRequest, SandwichFabric};
use scmp_net::rng::rng_for;
use scmp_net::topology::transit_stub;
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Engine, GroupId};
use std::sync::Arc;

const G: GroupId = GroupId(1);

fn main() {
    // 1 transit node sponsoring 4 stub rings of 5 routers: 21 routers.
    let topo = transit_stub(1, 4, 5, 10_000, &mut rng_for("conference", 0));
    println!(
        "transit-stub domain: {} routers, {} links, average degree {:.2}",
        topo.node_count(),
        topo.edge_count(),
        topo.average_degree()
    );

    // The transit node is the natural m-router location.
    let m_router = NodeId(0);
    let domain = ScmpDomain::new(topo.clone(), ScmpConfig::new(m_router));
    let mut engine = Engine::new(topo.clone(), move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    });

    // One participant in each stub ring joins the conference.
    let participants: Vec<NodeId> = vec![NodeId(2), NodeId(8), NodeId(13), NodeId(19)];
    let mut t = 0;
    for &p in &participants {
        engine.schedule_app(t, p, AppEvent::Join(G));
        t += 5_000;
    }
    // Everyone speaks once, in turn (tags 1..=4).
    let talk_start = t + 200_000;
    for (i, &p) in participants.iter().enumerate() {
        engine.schedule_app(
            talk_start + i as u64 * 100_000,
            p,
            AppEvent::Send {
                group: G,
                tag: i as u64 + 1,
            },
        );
    }
    engine.run_to_quiescence();

    println!(
        "\nconference of {} participants, each spoke once:",
        participants.len()
    );
    for (i, &p) in participants.iter().enumerate() {
        let tag = i as u64 + 1;
        let heard_by = participants
            .iter()
            .filter(|&&q| engine.stats().delivery_count(G, tag, q) == 1)
            .count();
        println!(
            "  speaker {p}: heard by {heard_by}/{} participants (incl. self)",
            participants.len()
        );
        assert_eq!(heard_by, participants.len(), "everyone hears every speaker");
    }
    println!(
        "data overhead {} cost units over {} data hops; no duplicates: {}",
        engine.stats().data_overhead,
        engine.stats().data_hops,
        !engine.stats().has_duplicate_deliveries()
    );

    // The m-router's fabric view of the same conference: four speaker
    // lines merge onto one output port feeding the tree root (§II-B).
    let fabric = SandwichFabric::configure(
        8,
        &[GroupRequest {
            sources: vec![0, 1, 2, 3],
            output: 7,
        }],
    )
    .expect("valid many-to-many request");
    println!(
        "\nm-router sandwich fabric ({} ports, depth {} crossbar columns):",
        fabric.size(),
        fabric.depth()
    );
    for line in 0..4 {
        println!("  speaker line {line} -> output port {}", fabric.eval(line));
        assert_eq!(fabric.eval(line), 7);
    }
    println!("all four speakers share one multicast tree via the CCN merge.");
}
