//! Tree-quality analysis: the per-member story behind Fig. 7.
//!
//! Builds the three algorithms' trees for the same group on a Waxman
//! topology and prints the full quality report — per-member delay
//! stretch, cost, router counts — plus the domain's topology profile and
//! the link-stress heat of running many groups at once.
//!
//! Run with: `cargo run --example tree_analysis`

use rand::seq::SliceRandom;
use scmp_net::metrics::{degree_histogram, profile};
use scmp_net::rng::rng_for;
use scmp_net::topology::{waxman, WaxmanConfig};
use scmp_net::{AllPairsPaths, Metric, NodeId};
use scmp_tree::analysis::{analyze, link_stress};
use scmp_tree::{kmb_tree, spt_tree, Dcdm, DelayBound, MulticastTree};

fn main() {
    let mut rng = rng_for("tree-analysis", 1);
    let topo = waxman(
        &WaxmanConfig {
            n: 60,
            ..WaxmanConfig::default()
        },
        &mut rng,
    );
    let paths = AllPairsPaths::compute(&topo);

    let prof = profile(&topo, Metric::Delay);
    println!(
        "topology: {} nodes, {} links, degree {:.2} (range {}..{}), \
         delay diameter {}, mean distance {:.0}, mean hops {:.2}",
        prof.nodes,
        prof.links,
        prof.average_degree,
        prof.degree_range.0,
        prof.degree_range.1,
        prof.diameter,
        prof.average_distance,
        prof.average_hops
    );
    let hist = degree_histogram(&topo);
    println!("degree histogram: {hist:?}\n");

    let root = NodeId(0);
    let mut pool: Vec<NodeId> = topo.nodes().filter(|&v| v != root).collect();
    pool.shuffle(&mut rng);
    let members: Vec<NodeId> = pool.into_iter().take(15).collect();

    let spt = spt_tree(&topo, &paths, root, &members);
    let kmb = kmb_tree(&topo, &paths, root, &members);
    let mut d = Dcdm::new(&topo, &paths, root, DelayBound::Dynamic);
    for &m in &members {
        d.join(m);
    }
    let dcdm = d.into_tree();

    println!(
        "{:<6} {:>9} {:>9} {:>8} {:>12} {:>11}",
        "algo", "cost", "delay", "routers", "mean stretch", "max stretch"
    );
    for (name, tree) in [("SPT", &spt), ("KMB", &kmb), ("DCDM", &dcdm)] {
        let r = analyze(&topo, &paths, tree);
        println!(
            "{:<6} {:>9} {:>9} {:>8} {:>12.3} {:>11.3}",
            name, r.cost, r.delay, r.routers, r.mean_stretch, r.max_stretch
        );
    }

    // Worst-served member under each algorithm.
    println!("\nworst-served member per algorithm:");
    for (name, tree) in [("SPT", &spt), ("KMB", &kmb), ("DCDM", &dcdm)] {
        let r = analyze(&topo, &paths, tree);
        let worst = r
            .member_delays
            .iter()
            .max_by(|a, b| a.stretch.partial_cmp(&b.stretch).unwrap())
            .unwrap();
        println!(
            "  {name:<5} member {}: ml {} vs ul {} (stretch {:.2})",
            worst.member, worst.multicast_delay, worst.unicast_delay, worst.stretch
        );
    }

    // Link stress of ten concurrent groups (DCDM trees).
    let mut trees: Vec<MulticastTree> = Vec::new();
    for g in 0..10u64 {
        let mut rng = rng_for("tree-analysis-group", g);
        let mut pool: Vec<NodeId> = topo.nodes().filter(|&v| v != root).collect();
        pool.shuffle(&mut rng);
        let ms: Vec<NodeId> = pool.into_iter().take(10).collect();
        let mut d = Dcdm::new(&topo, &paths, root, DelayBound::Dynamic);
        for &m in &ms {
            d.join(m);
        }
        trees.push(d.into_tree());
    }
    let refs: Vec<&MulticastTree> = trees.iter().collect();
    let stress = link_stress(&refs);
    let mut hot: Vec<_> = stress.iter().collect();
    hot.sort_by_key(|(_, &c)| std::cmp::Reverse(c));
    println!("\nhottest links across 10 concurrent groups (root at {root}):");
    for ((a, b), count) in hot.iter().take(5) {
        println!("  {a} -- {b}: carried by {count}/10 trees");
    }
    println!(
        "\n(the links nearest the shared root carry most trees — the §I\n\
         concentration the m-router's fabric is built to absorb)"
    );
}
