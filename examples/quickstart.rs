//! Quickstart: the paper's Fig. 5 walkthrough, twice.
//!
//! First the DCDM algorithm is driven directly (the m-router's view);
//! then the full SCMP protocol runs on the discrete-event simulator and
//! we check that the physically installed routing entries form the same
//! tree and deliver data to every member.
//!
//! Run with: `cargo run --example quickstart`

use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_net::topology::examples::fig5;
use scmp_net::{AllPairsPaths, NodeId};
use scmp_sim::{AppEvent, Engine, GroupId};
use scmp_tree::{Dcdm, DelayBound};
use std::sync::Arc;

fn main() {
    let topo = fig5();
    let paths = AllPairsPaths::compute(&topo);
    println!(
        "Fig. 5 topology: {} nodes, {} links",
        topo.node_count(),
        topo.edge_count()
    );
    println!("m-router: node 0; members g1=4, g2=3, g3=5\n");

    // --- Part 1: DCDM, the algorithm the m-router runs (§III-D) ------
    let mut dcdm = Dcdm::new(&topo, &paths, NodeId(0), DelayBound::Dynamic);
    for (name, member) in [("g1", NodeId(4)), ("g2", NodeId(3)), ("g3", NodeId(5))] {
        let o = dcdm.join(member);
        println!(
            "{name} joins: graft at {:?}, path {:?}{}",
            o.graft,
            o.path,
            if o.is_simple_graft() {
                " (simple graft -> BRANCH packet)".to_string()
            } else {
                format!(
                    " (loop elimination: reparented {:?} -> TREE packets)",
                    o.reparented
                )
            }
        );
        let t = dcdm.tree();
        println!(
            "    tree delay = {}, tree cost = {}",
            t.tree_delay(&topo),
            t.tree_cost(&topo)
        );
    }
    println!(
        "\nFinal tree edges (parent -> child): {:?}",
        dcdm.tree().edges()
    );
    assert_eq!(dcdm.tree().tree_delay(&topo), 12); // the paper's numbers
    assert_eq!(dcdm.tree().tree_cost(&topo), 17);

    // --- Part 2: the full protocol on the simulator -------------------
    const G: GroupId = GroupId(1);
    let domain = ScmpDomain::new(topo.clone(), ScmpConfig::new(NodeId(0)));
    let mut engine = Engine::new(topo.clone(), move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    });
    engine.schedule_app(0, NodeId(4), AppEvent::Join(G));
    engine.schedule_app(1_000, NodeId(3), AppEvent::Join(G));
    engine.schedule_app(2_000, NodeId(5), AppEvent::Join(G));
    // g1's subnet sends one payload on the bidirectional shared tree.
    engine.schedule_app(10_000, NodeId(4), AppEvent::Send { group: G, tag: 1 });
    engine.run_to_quiescence();

    println!("\nAfter the protocol run:");
    for v in topo.nodes() {
        if let Some(entry) = engine.router(v).entry(G) {
            println!(
                "  node {v}: upstream {:?}, downstream {:?}, local members: {}",
                entry.upstream, entry.downstream_routers, entry.local_interface
            );
        }
    }
    for m in [NodeId(3), NodeId(4), NodeId(5)] {
        assert_eq!(engine.stats().delivery_count(G, 1, m), 1);
    }
    println!(
        "\nPayload delivered to all 3 members exactly once; \
         data overhead = {} cost units, protocol overhead = {} cost units",
        engine.stats().data_overhead,
        engine.stats().protocol_overhead
    );
}
