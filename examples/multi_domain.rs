//! Multiple m-routers per domain (§II-A): "An ISP may own more than one
//! m-routers in the Internet for serving its customers in different
//! geographic regions ... our approach can be easily extended to
//! multiple m-routers per domain."
//!
//! Two m-routers split the group space round-robin; each builds and
//! distributes its own trees, keeps its own membership database and
//! accounting log, and serves its groups' traffic independently.
//!
//! Run with: `cargo run --example multi_domain`

use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_net::rng::rng_for;
use scmp_net::topology::{gt_itm_flat, GtItmConfig};
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Engine, GroupId};
use std::sync::Arc;

fn main() {
    let topo = gt_itm_flat(
        &GtItmConfig {
            n: 30,
            average_degree: 4.0,
            grid: 10_000,
        },
        &mut rng_for("multi-domain", 0),
    );
    println!(
        "domain: {} routers, {} links; m-routers at nodes 0 and 1",
        topo.node_count(),
        topo.edge_count()
    );

    let mut cfg = ScmpConfig::new(NodeId(0));
    cfg.extra_m_routers = vec![NodeId(1)];
    let domain = ScmpDomain::new(topo.clone(), cfg);
    let mut engine = Engine::new(topo.clone(), move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    });

    // Even group -> m-router 0, odd group -> m-router 1.
    let video = GroupId(2);
    let audio = GroupId(3);
    let video_members = [NodeId(5), NodeId(12), NodeId(20)];
    let audio_members = [NodeId(7), NodeId(14), NodeId(26)];
    let mut t = 0;
    for &m in &video_members {
        engine.schedule_app(t, m, AppEvent::Join(video));
        t += 3_000;
    }
    for &m in &audio_members {
        engine.schedule_app(t, m, AppEvent::Join(audio));
        t += 3_000;
    }
    engine.schedule_app(
        600_000,
        NodeId(9),
        AppEvent::Send {
            group: video,
            tag: 1,
        },
    );
    engine.schedule_app(
        600_000,
        NodeId(9),
        AppEvent::Send {
            group: audio,
            tag: 2,
        },
    );
    engine.run_to_quiescence();

    for (label, m_router, group, members, tag) in [
        ("video", NodeId(0), video, &video_members, 1u64),
        ("audio", NodeId(1), audio, &audio_members, 2),
    ] {
        let state = engine.router(m_router).m_state().expect("is an m-router");
        let tree = state.tree(group).expect("group served here");
        println!(
            "\n{label} group {group:?} @ m-router {m_router}: tree of {} routers, \
             {} members, accounting log {} records",
            tree.on_tree_count(),
            tree.member_count(),
            state.sessions.log().len()
        );
        assert_eq!(tree.root(), m_router);
        for &m in members {
            let got = engine.stats().delivery_count(group, tag, m);
            println!("  member {m}: received payload {tag} x{got}");
            assert_eq!(got, 1);
        }
    }

    // Isolation: the video m-router never saw the audio group.
    assert!(engine
        .router(NodeId(0))
        .m_state()
        .unwrap()
        .tree(audio)
        .is_none());
    assert!(engine
        .router(NodeId(1))
        .m_state()
        .unwrap()
        .tree(video)
        .is_none());
    println!("\ngroups are fully partitioned between the two m-routers.");
}
