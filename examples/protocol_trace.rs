//! The paper's Fig. 4 walkthrough as a live event trace.
//!
//! Runs the Fig. 5 topology with the simulator's tracer enabled and
//! prints the complete protocol conversation — IGMP-triggered JOIN,
//! BRANCH/TREE distribution, PRUNE on leave, encapsulated data — one
//! line per event, as a teaching aid for how SCMP actually talks.
//!
//! Run with: `cargo run --example protocol_trace`

use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_net::topology::examples::fig5;
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Engine, GroupId, PacketClass, TraceKind};
use std::sync::Arc;

const G: GroupId = GroupId(1);

fn main() {
    let topo = fig5();
    let domain = ScmpDomain::new(topo.clone(), ScmpConfig::new(NodeId(0)));
    let mut engine = Engine::new(topo, move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    });
    engine.enable_trace();

    engine.schedule_app(0, NodeId(4), AppEvent::Join(G)); // g1
    engine.schedule_app(100, NodeId(3), AppEvent::Join(G)); // g2
    engine.schedule_app(200, NodeId(5), AppEvent::Join(G)); // g3 (restructure!)
    engine.schedule_app(10_000, NodeId(1), AppEvent::Send { group: G, tag: 1 });
    engine.schedule_app(20_000, NodeId(5), AppEvent::Leave(G));
    engine.run_to_quiescence();

    println!("{:>6}  {:<6} event", "time", "node");
    for rec in engine.trace() {
        let what = match &rec.kind {
            TraceKind::App(AppEvent::Join(g)) => format!("host joins {g:?}"),
            TraceKind::App(AppEvent::Leave(g)) => format!("host leaves {g:?}"),
            TraceKind::App(AppEvent::Send { group, tag }) => {
                format!("host sends payload #{tag} to {group:?}")
            }
            TraceKind::Deliver {
                from,
                class,
                group,
                tag,
            } => {
                let kind = match class {
                    PacketClass::Data => format!("DATA #{tag}"),
                    PacketClass::Control => "control".to_string(),
                };
                format!("receives {kind} for {group:?} from {from}")
            }
            TraceKind::Timer { token } => format!("timer {token} fires"),
            TraceKind::Fault(f) => format!("fault injected: {}", f.label()),
            TraceKind::NonNeighbourDrop { to } => {
                format!("drops a send to non-neighbour n{}", to.0)
            }
        };
        println!("{:>6}  n{:<5} {}", rec.time, rec.node.0, what);
    }

    let s = engine.stats();
    println!(
        "\n{} events; data overhead {} / protocol overhead {} cost units",
        engine.trace().len(),
        s.data_overhead,
        s.protocol_overhead
    );
    for m in [NodeId(3), NodeId(4)] {
        assert_eq!(s.delivery_count(G, 1, m), 1);
    }
    println!("members 3 and 4 (and 5, before leaving) each heard payload #1 exactly once.");
}
