//! The paper's Fig. 4 walkthrough as a live event trace.
//!
//! Runs the Fig. 5 topology with a telemetry sink installed and prints
//! the complete protocol conversation — IGMP-triggered JOIN,
//! BRANCH/TREE distribution, PRUNE on leave, encapsulated data — one
//! line per structured [`Event`](scmp_telemetry::Event), as a teaching
//! aid for how SCMP actually talks.
//!
//! Run with: `cargo run --example protocol_trace`

use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_net::topology::examples::fig5;
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Engine, GroupId, RingSink};
use scmp_telemetry::{EventKind, TrafficClass};
use std::sync::Arc;

const G: GroupId = GroupId(1);

fn main() {
    let topo = fig5();
    let domain = ScmpDomain::new(topo.clone(), ScmpConfig::new(NodeId(0)));
    let mut engine = Engine::new(topo, move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    });
    engine.set_sink(Box::new(RingSink::new(1 << 16)));

    engine.schedule_app(0, NodeId(4), AppEvent::Join(G)); // g1
    engine.schedule_app(100, NodeId(3), AppEvent::Join(G)); // g2
    engine.schedule_app(200, NodeId(5), AppEvent::Join(G)); // g3 (restructure!)
    engine.schedule_app(10_000, NodeId(1), AppEvent::Send { group: G, tag: 1 });
    engine.schedule_app(20_000, NodeId(5), AppEvent::Leave(G));
    engine.run_to_quiescence();

    println!("{:>6}  {:<6} event", "time", "node");
    for ev in engine.events() {
        let what = match ev.kind {
            EventKind::Join { group } => format!("host joins g{group}"),
            EventKind::Leave { group } => format!("host leaves g{group}"),
            EventKind::Send { group, tag } => {
                format!("host sends payload #{tag} to g{group}")
            }
            EventKind::Deliver {
                from,
                class,
                group,
                tag,
                ctl,
            } => {
                let kind = match (class, ctl) {
                    (TrafficClass::Data, _) => format!("DATA #{tag}"),
                    (TrafficClass::Control, Some(c)) => c.label().to_string(),
                    (TrafficClass::Control, None) => "control".to_string(),
                };
                format!("receives {kind} for g{group} from n{from}")
            }
            EventKind::DeliverLocal { group, tag, delay } => {
                format!("delivers #{tag} to g{group}'s member hosts (+{delay} ticks)")
            }
            EventKind::Timer { token } => format!("timer {token} fires"),
            EventKind::LinkDown { a, b } => format!("fault injected: link {a}-{b} down"),
            EventKind::LinkUp { a, b } => format!("fault injected: link {a}-{b} up"),
            EventKind::RouterCrash => "fault injected: router crash".to_string(),
            EventKind::RouterRecover => "fault injected: router recover".to_string(),
            EventKind::Drop { reason, to, .. } => match to {
                Some(to) => format!("drops a send to n{to} ({})", reason.label()),
                None => format!("drops a packet ({})", reason.label()),
            },
            EventKind::Repair { latency } => {
                format!("completes a tree repair ({latency} ticks after the fault)")
            }
            EventKind::ChannelDuplicate { to, .. } => {
                format!("channel duplicates a send to n{to}")
            }
            EventKind::ChannelReorder { to, jitter, .. } => {
                format!("channel delays a send to n{to} by {jitter} ticks")
            }
            EventKind::Retransmit {
                group, to, attempt, ..
            } => {
                format!("retransmits g{group} tree state to n{to} (attempt {attempt})")
            }
            EventKind::Takeover => "standby promotes itself to m-router".to_string(),
            EventKind::TreeHealth {
                group,
                members,
                cost,
                ..
            } => {
                format!("samples g{group} tree health ({members} members, cost {cost})")
            }
            EventKind::Nack { origin, seq, .. } => {
                format!("NACKs seq {seq} of n{origin}'s stream")
            }
            EventKind::NackSuppress { origin, seq, .. } => {
                format!("suppresses a duplicate NACK (n{origin} seq {seq})")
            }
            EventKind::RepairHit { origin, seq, .. } => {
                format!("answers a NACK from its repair cache (n{origin} seq {seq})")
            }
            EventKind::RepairMiss { origin, seq, .. } => {
                format!("misses its repair cache (n{origin} seq {seq})")
            }
            EventKind::Recovery { seq, latency, .. } => {
                format!("recovers seq {seq} ({latency} ticks after the gap opened)")
            }
            EventKind::Partition { stranded, members } => {
                format!(
                    "enters partition-degraded mode ({stranded} nodes, {members} members stranded)"
                )
            }
            EventKind::Heal { restored } => {
                format!("sees the partition heal ({restored} nodes restored)")
            }
            EventKind::Reconcile {
                group, readopted, ..
            } => {
                format!("reconciles g{group} ({readopted} members readopted)")
            }
            EventKind::Gauge { .. } => continue,
        };
        println!("{:>6}  n{:<5} {}", ev.time, ev.node, what);
    }

    let s = engine.stats();
    println!(
        "\n{} events; data overhead {} / protocol overhead {} cost units",
        engine.events().len(),
        s.data_overhead,
        s.protocol_overhead
    );
    for m in [NodeId(3), NodeId(4)] {
        assert_eq!(s.delivery_count(G, 1, m), 1);
    }
    println!("members 3 and 4 (and 5, before leaving) each heard payload #1 exactly once.");
}
