//! Tour of the telemetry stack: sinks, gauges, histograms, spans, and
//! the trace inspector — end to end on one faulty SCMP session.
//!
//! The pipeline demonstrated here is the observability story of the
//! whole workspace:
//!
//! 1. install a bounded [`RingSink`] and a gauge sampler on the engine;
//! 2. run a Fig. 5 session through a link cut and repair;
//! 3. export the structured events as JSONL, then decode them back;
//! 4. let [`Trace`](scmp_telemetry::Trace) answer the questions the raw
//!    stream can't: did every send converge, what were the latency
//!    percentiles, is every lost packet accounted for;
//! 5. print the span profile (where wall-clock time went).
//!
//! Run with: `cargo run --example telemetry_tour`

use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_net::topology::examples::fig5;
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Engine, FaultKind, FaultPlan, GroupId, RingSink};
use scmp_telemetry::{encode_events, profile, Trace};
use std::sync::Arc;

const G: GroupId = GroupId(1);

fn main() {
    profile::reset();

    // 1. Engine with telemetry on: bounded ring of structured events
    //    plus a gauge sample every 2000 ticks.
    let mut config = ScmpConfig::new(NodeId(0));
    config.repair_interval = 2_000;
    let topo = fig5();
    let domain = ScmpDomain::new(topo.clone(), config);
    let mut engine = Engine::new(topo, move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    });
    engine.set_sink(Box::new(RingSink::new(1 << 16)));
    engine.set_gauge_interval(2_000);

    // 2. A session with a mid-stream link cut: members 3/4/5, source 1,
    //    one send before the cut and one after the repair scan fixed it.
    engine.schedule_app(0, NodeId(4), AppEvent::Join(G));
    engine.schedule_app(100, NodeId(3), AppEvent::Join(G));
    engine.schedule_app(200, NodeId(5), AppEvent::Join(G));
    let plan = FaultPlan::new().at(20_000, FaultKind::LinkDown { a: 0, b: 2 });
    plan.validate(engine.topo()).expect("plan matches topology");
    engine.schedule_fault_plan(&plan);
    engine.schedule_app(10_000, NodeId(1), AppEvent::Send { group: G, tag: 1 });
    engine.schedule_app(40_000, NodeId(1), AppEvent::Send { group: G, tag: 2 });
    engine.run_until(60_000);

    // 3. Export as JSONL and decode it back — the round trip is exact.
    let events = engine.events();
    let jsonl = encode_events(&events);
    println!(
        "exported {} events, {} bytes of JSONL",
        events.len(),
        jsonl.len()
    );
    println!("first line: {}", jsonl.lines().next().unwrap());
    let trace = Trace::parse(&jsonl).expect("own encoding decodes");
    assert_eq!(trace.events(), &events[..], "lossless round trip");

    // 4a. Summary + convergence: both sends must reach all three
    //     members, the second one only after the tree repair.
    print!("\n{}", trace.summary());
    let conv = trace.convergence(G.0);
    print!("\n{}", conv.report());
    for p in &conv.points {
        assert_eq!(p.members_at_send.len(), 3);
        assert!(p.converged_at.is_some(), "tag {} never converged", p.tag);
    }

    // 4b. Histograms recomputed from the trace match the engine's own.
    let hists = trace.histograms();
    print!("\n{}", hists.e2e_delay.dump("e2e delay (ticks)"));
    let stats = engine.stats();
    assert_eq!(hists.e2e_delay.count(), stats.e2e_delay_hist.count());
    assert_eq!(hists.e2e_delay.max(), stats.e2e_delay_hist.max());
    assert_eq!(hists.repair.count(), stats.repair_hist.count());

    // 4c. The audit: no duplicate deliveries, and any missing delivery
    //     must be explained by a recorded drop or fault.
    let audit = trace.audit();
    print!("\n{}", audit.report());
    assert!(audit.passed(), "trace audits clean");

    // 4d. The gauge time series picked up the degraded link.
    let gauges = trace.gauges();
    assert!(!gauges.is_empty(), "gauge sampler ran");
    assert!(
        gauges.iter().any(|g| g.down_links > 0),
        "a sample saw the cut link"
    );
    println!(
        "\n{} gauge samples; max queue depth {}",
        gauges.len(),
        gauges.iter().map(|g| g.queue_depth).max().unwrap()
    );

    // 5. Where the wall-clock went: DCDM builds, repair scans, dispatch.
    print!("\n{}", profile::snapshot().report());
}
