//! Hot-standby m-router failover (§V item 4): "there is a secondary
//! m-router concurrently running with the primary m-router. When the
//! primary m-router fails, the secondary m-router will take over the job
//! automatically."
//!
//! Timeline: a group forms under the primary; the primary dies; the
//! standby's deadman watchdog fires, it announces itself as the new
//! m-router, rebuilds the tree around the dead node from its mirrored
//! membership database, and service resumes.
//!
//! Run with: `cargo run --example failover`

use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_net::rng::rng_for;
use scmp_net::topology::{waxman, WaxmanConfig};
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Engine, GroupId};
use std::sync::Arc;

const G: GroupId = GroupId(1);

fn main() {
    // A topology that stays connected when the primary dies.
    let topo = (0..)
        .map(|seed| {
            waxman(
                &WaxmanConfig {
                    n: 30,
                    min_delay_one: true,
                    ..WaxmanConfig::default()
                },
                &mut rng_for("failover-example", seed),
            )
        })
        .find(|t| t.without_node(NodeId(0)).components().len() == 2)
        .unwrap();

    let primary = NodeId(0);
    let standby = NodeId(1);
    let mut cfg = ScmpConfig::new(primary);
    cfg.standby = Some(standby);
    cfg.heartbeat_interval = 50_000;
    cfg.takeover_rebuild_delay = 100_000;
    let domain = ScmpDomain::new(topo.clone(), cfg);
    let mut engine = Engine::new(topo.clone(), move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    });

    let members = [NodeId(5), NodeId(12), NodeId(20), NodeId(27)];
    println!("t=0        : members {members:?} join via primary m-router {primary}");
    for (i, &m) in members.iter().enumerate() {
        engine.schedule_app(i as u64 * 10_000, m, AppEvent::Join(G));
    }
    engine.schedule_app(500_000, NodeId(9), AppEvent::Send { group: G, tag: 1 });
    engine.run_until(600_000);
    let ok = members
        .iter()
        .all(|&m| engine.stats().delivery_count(G, 1, m) == 1);
    println!("t=500_000  : packet 1 from node 9 delivered to all members: {ok}");
    assert!(ok);

    println!("t=700_000  : PRIMARY M-ROUTER {primary} FAILS");
    engine.run_until(700_000);
    engine.set_node_down(primary, true);

    // Packet sent during the outage window is lost (encapsulation has
    // nowhere to go).
    engine.schedule_app(720_000, NodeId(9), AppEvent::Send { group: G, tag: 2 });
    engine.run_until(5_000_000);
    let lost = members
        .iter()
        .filter(|&&m| engine.stats().delivery_count(G, 2, m) == 0)
        .count();
    println!(
        "t=720_000  : packet 2 sent during outage; lost at {lost}/{} members",
        members.len()
    );
    assert!(
        engine.router(standby).is_m_router(),
        "standby must have taken over"
    );
    println!("t≈900_000  : standby {standby} detected missing heartbeats and took over");

    engine.schedule_app(5_100_000, NodeId(9), AppEvent::Send { group: G, tag: 3 });
    engine.run_to_quiescence();
    let ok = members
        .iter()
        .all(|&m| engine.stats().delivery_count(G, 3, m) == 1);
    println!("t=5_100_000: packet 3 delivered to all members via new m-router: {ok}");
    assert!(ok);

    let log = engine
        .router(standby)
        .m_state()
        .unwrap()
        .sessions
        .log()
        .len();
    println!("\nnew m-router's mirrored accounting log: {log} membership records");
    println!("service restored without any member re-joining.");
}
