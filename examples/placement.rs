//! m-router placement (§IV-A): apply the paper's three heuristics to a
//! Waxman topology and compare the DCDM trees each placement yields.
//!
//! Run with: `cargo run --example placement`

use rand::seq::SliceRandom;
use scmp_core::placement::{self, PlacementRule};
use scmp_net::rng::rng_for;
use scmp_net::topology::{waxman, WaxmanConfig};
use scmp_net::{AllPairsPaths, NodeId};
use scmp_tree::{Dcdm, DelayBound};

fn main() {
    let mut rng = rng_for("placement-example", 0);
    let topo = waxman(&WaxmanConfig::default(), &mut rng);
    let paths = AllPairsPaths::compute(&topo);
    println!(
        "Waxman topology: {} nodes, {} links (alpha=0.25, beta=0.2)",
        topo.node_count(),
        topo.edge_count()
    );

    let (a, b, d) = placement::delay_diameter(&topo, &paths);
    println!("delay diameter: {a} <-> {b} at delay {d}\n");

    // A random 30-member group.
    let mut pool: Vec<NodeId> = topo.nodes().collect();
    pool.shuffle(&mut rng);
    let members: Vec<NodeId> = pool.into_iter().take(30).collect();

    println!(
        "{:<18} {:>8} {:>10} {:>10}",
        "strategy", "m-router", "tree cost", "tree delay"
    );
    for rule in PlacementRule::ALL {
        let root = placement::place(rule, &topo, &paths);
        let group: Vec<NodeId> = members.iter().copied().filter(|&m| m != root).collect();
        let mut dcdm = Dcdm::new(&topo, &paths, root, DelayBound::Dynamic);
        for &m in &group {
            dcdm.join(m);
        }
        let tree = dcdm.into_tree();
        println!(
            "{:<18} {:>8} {:>10} {:>10}",
            rule.label(),
            root.to_string(),
            tree.tree_cost(&topo),
            tree.tree_delay(&topo)
        );
    }

    // Contrast: the worst corner of the grid.
    let worst = topo
        .nodes()
        .max_by_key(|&v| {
            topo.nodes()
                .filter_map(|u| paths.unicast_delay(v, u))
                .sum::<u64>()
        })
        .unwrap();
    let group: Vec<NodeId> = members.iter().copied().filter(|&m| m != worst).collect();
    let mut dcdm = Dcdm::new(&topo, &paths, worst, DelayBound::Dynamic);
    for &m in &group {
        dcdm.join(m);
    }
    let tree = dcdm.into_tree();
    println!(
        "{:<18} {:>8} {:>10} {:>10}   <- anti-heuristic baseline",
        "worst-corner",
        worst.to_string(),
        tree.tree_cost(&topo),
        tree.tree_delay(&topo)
    );
    println!(
        "\nThe paper's observation holds: no single rule dominates, but all\n\
         three avoid pathological placements like the worst corner."
    );
}
