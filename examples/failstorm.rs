//! A fault storm against the Fig. 5 domain: link cuts and a router
//! crash land while a multicast session is live, and the m-router's
//! periodic repair scan re-runs DCDM on the surviving topology to stitch
//! the tree back together.
//!
//! Demonstrates the fault-injection subsystem end to end: a declarative
//! [`FaultPlan`] rides the simulator's own event queue (so every run is
//! bit-for-bit reproducible), and the robustness counters in `SimStats`
//! report what the failures cost — delivery ratio, repair latency, and
//! control overhead spent while degraded.
//!
//! Run with: `cargo run --example failstorm`

use scmp_core::router::{ScmpConfig, ScmpDomain, ScmpRouter};
use scmp_net::topology::examples::fig5;
use scmp_net::NodeId;
use scmp_sim::{AppEvent, Engine, FaultKind, FaultPlan, GroupId, RingSink};
use scmp_telemetry::{encode_events, EventKind, Trace};
use std::sync::Arc;

const G: GroupId = GroupId(1);

fn main() {
    let topo = fig5();

    // Robustness knobs on: periodic repair scan at the m-router plus
    // JOIN/LEAVE retransmission at the designated routers.
    let mut config = ScmpConfig::new(NodeId(0));
    config.repair_interval = 2_000;
    config.join_retry = 5_000;
    config.leave_retry = 5_000;
    let domain = ScmpDomain::new(topo.clone(), config);

    let mut engine = Engine::new(topo, move |me, _, _| {
        ScmpRouter::new(me, Arc::clone(&domain))
    });
    engine.set_sink(Box::new(RingSink::new(1 << 18)));
    engine.set_gauge_interval(5_000);

    // Session setup: receivers at 3, 4, 5; source at 1.
    engine.schedule_app(0, NodeId(4), AppEvent::Join(G));
    engine.schedule_app(100, NodeId(3), AppEvent::Join(G));
    engine.schedule_app(200, NodeId(5), AppEvent::Join(G));

    // The storm. Cutting 0-2 severs the tree limb feeding members 3 and
    // 5; crashing router 4 wipes its multicast state (amnesia), so its
    // re-join after recovery exercises the idempotent-JOIN repair path.
    let plan = FaultPlan::new()
        .at(20_000, FaultKind::LinkDown { a: 0, b: 2 })
        .at(40_000, FaultKind::RouterCrash { node: 4 })
        .at(60_000, FaultKind::RouterRecover { node: 4 })
        .at(80_000, FaultKind::LinkUp { a: 0, b: 2 });
    plan.validate(engine.topo()).expect("plan matches topology");
    engine.schedule_fault_plan(&plan);

    // Node 4 re-joins once it is back up (its host stack would re-issue
    // IGMP membership on reboot).
    engine.schedule_app(61_000, NodeId(4), AppEvent::Join(G));

    // Data before, during, and after the storm.
    let mut expected = Vec::new();
    for (k, t) in [10_000u64, 30_000, 70_000, 90_000].iter().enumerate() {
        let tag = k as u64 + 1;
        engine.schedule_app(*t, NodeId(1), AppEvent::Send { group: G, tag });
        for m in [NodeId(3), NodeId(4), NodeId(5)] {
            expected.push((G, tag, m));
        }
    }

    // The repair scan re-arms forever, so run to a deadline rather than
    // to quiescence.
    engine.run_until(120_000);

    println!("fault storm timeline:");
    let events = engine.events();
    for ev in &events {
        let what = match ev.kind {
            EventKind::LinkDown { a, b } => format!("link {a}-{b} down"),
            EventKind::LinkUp { a, b } => format!("link {a}-{b} up"),
            EventKind::RouterCrash => "router crash".to_string(),
            EventKind::RouterRecover => "router recover".to_string(),
            EventKind::Repair { latency } => format!("tree repaired (+{latency} ticks)"),
            _ => continue,
        };
        println!("  t={:>6}  n{}  {}", ev.time, ev.node, what);
    }

    // Export the full structured trace; `scmp-inspect` (or the
    // telemetry_tour example) can replay histograms, convergence and the
    // delivery audit from this file alone.
    let trace_path = std::path::Path::new("bench_results").join("failstorm_trace.jsonl");
    if std::fs::create_dir_all("bench_results").is_ok()
        && std::fs::write(&trace_path, encode_events(&events)).is_ok()
    {
        println!(
            "\ntrace: {} events -> {}",
            events.len(),
            trace_path.display()
        );
    }

    let s = engine.stats();
    println!("\nrobustness report:");
    println!("  faults injected            {}", s.faults_injected);
    println!("  tree repairs               {}", s.repairs);
    println!(
        "  mean repair latency        {:.0}",
        s.mean_repair_latency()
    );
    println!("  max repair latency         {}", s.max_repair_latency);
    println!(
        "  delivery ratio             {:.3}",
        s.delivery_ratio(expected.iter().copied())
    );
    println!(
        "  control overhead (faulty)  {} / {} total",
        s.control_overhead_during_failure, s.protocol_overhead
    );
    println!(
        "  data overhead (faulty)     {} / {} total",
        s.data_overhead_during_failure, s.data_overhead
    );
    print!("\n{}", s.repair_hist.dump("repair latency (ticks)"));

    // The inspector recomputes the same histogram purely from the
    // exported events — the trace is a faithful record.
    let replay = Trace::from_events(events).histograms();
    assert_eq!(replay.repair.count(), s.repair_hist.count());
    assert_eq!(replay.repair.max(), s.repair_hist.max());

    // The storm was survivable: the repair scan rerouted around the cut
    // within two scan periods and node 4's post-recovery re-join
    // reinstalled its branch before the next data packet, so nothing
    // scheduled here was lost.
    assert!(s.repairs >= 1, "repair scan never fired");
    let ratio = s.delivery_ratio(expected.iter().copied());
    assert!(ratio >= 11.0 / 12.0, "delivery ratio {ratio} too low");
    println!(
        "\nsurvived: {} repairs, delivery ratio {:.3}",
        s.repairs, ratio
    );
}
