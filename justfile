# Task runner for the SCMP reproduction. `just` is optional — every
# recipe is a one-liner you can paste into a shell.

default: test

# Full test suite (debug profile).
test:
    cargo test -q

# Tier-1 gate: release build + full test suite with cargo forced
# offline (the repo vendors all dependencies).
test-offline:
    ./scripts/test-offline.sh

# Release build only.
build:
    cargo build --release

# Style gate: formatting and clippy, warnings as errors.
lint:
    cargo fmt --check
    cargo clippy --workspace -- -D warnings

# Fault-injection demo: link cuts + router crash against Fig. 5.
failstorm:
    cargo run --example failstorm

# Query a JSONL telemetry trace, e.g.:
#   just inspect bench_results/failstorm_trace.jsonl --audit
inspect +args:
    cargo run -q -p scmp-bench --bin scmp-inspect -- {{args}}

# End-to-end telemetry walkthrough: sinks, gauges, histograms, spans,
# inspector round trip.
telemetry-tour:
    cargo run --example telemetry_tour

# Refresh the committed golden traces (legacy text + structured JSONL)
# after an intentional protocol change; review the diff like code.
golden-update:
    UPDATE_GOLDEN=1 cargo test -p scmp-integration --test golden_trace
    UPDATE_GOLDEN=1 cargo test -p scmp-integration --test telemetry
