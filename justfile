# Task runner for the SCMP reproduction. `just` is optional — every
# recipe is a one-liner you can paste into a shell.

default: test

# Full test suite (debug profile).
test:
    cargo test -q

# Tier-1 gate: release build + full test suite with cargo forced
# offline (the repo vendors all dependencies).
test-offline:
    ./scripts/test-offline.sh

# Release build only.
build:
    cargo build --release

# Style gate: formatting and clippy, warnings as errors.
lint:
    cargo fmt --check
    cargo clippy --workspace -- -D warnings

# Fault-injection demo: link cuts + router crash against Fig. 5.
failstorm:
    cargo run --example failstorm

# Refresh the committed golden trace after an intentional protocol
# change; review the diff like code.
golden-update:
    UPDATE_GOLDEN=1 cargo test -p scmp-integration --test golden_trace
