# Task runner for the SCMP reproduction. `just` is optional — every
# recipe is a one-liner you can paste into a shell.

default: test

# Full test suite (debug profile).
test:
    cargo test -q

# Tier-1 gate: release build + full test suite with cargo forced
# offline (the repo vendors all dependencies).
test-offline:
    ./scripts/test-offline.sh

# Release build only.
build:
    cargo build --release

# Style gate: formatting and clippy, warnings as errors.
lint:
    cargo fmt --check
    cargo clippy --workspace -- -D warnings

# Fault-injection demo: link cuts + router crash against Fig. 5.
failstorm:
    cargo run --example failstorm

# Regenerate the Fig. 7/8/9 and placement figures on the sweep worker
# pool (all cores; pass e.g. `seeds=10` for the paper's averaging).
sweep seeds="10":
    cargo run --release -p scmp-bench --bin fig7 -- {{seeds}}
    cargo run --release -p scmp-bench --bin fig8 -- {{seeds}}
    cargo run --release -p scmp-bench --bin fig9 -- {{seeds}}
    cargo run --release -p scmp-bench --bin placement -- {{seeds}}

# Same figures pinned to one worker — byte-identical output to `sweep`,
# for determinism triage.
sweep-serial seeds="10":
    cargo run --release -p scmp-bench --bin fig7 -- {{seeds}} --jobs 1
    cargo run --release -p scmp-bench --bin fig8 -- {{seeds}} --jobs 1
    cargo run --release -p scmp-bench --bin fig9 -- {{seeds}} --jobs 1
    cargo run --release -p scmp-bench --bin placement -- {{seeds}} --jobs 1

# Scaling check: serial vs parallel wall clock + byte-identity on the
# Fig. 8/9 suite; writes bench_results/sweep_speedup.json.
sweep-speedup seeds="3" jobs="4":
    cargo run --release -p scmp-bench --bin sweep_speedup -- {{seeds}} --jobs {{jobs}}

# Adversarial-channel degradation sweep: delivery ratio and overhead
# across loss rates on the ARPANET topology, invariants asserted per
# cell; writes bench_results/chaos.json. Parallel runs re-check byte
# identity against a serial pass.
chaos seeds="3":
    cargo run --release -p scmp-bench --bin chaos -- {{seeds}}

# Reliable-multicast comparison: the same chaos sweep runs both the
# best-effort and the NACK-recovery tier and prints both curves
# (delivery floors, recovery-latency percentiles, duplicate-NACK
# suppression and repair-cache hit rates asserted per cell). --jobs 2
# arms the serial-vs-parallel byte-identity guard.
chaos-reliable seeds="3":
    cargo run --release -p scmp-bench --bin chaos -- {{seeds}} --jobs 2

# Partition-and-heal series alone: seeded correlated cuts at t=60k
# healing at t=160k, per-cell asserts zero split-brain, zero duplicate
# delivery, and post-heal delivery >= 0.99 inside the bounded
# reconvergence window. --jobs 2 arms the serial-vs-parallel
# byte-identity guard; the committed chaos.json baseline is untouched
# (run `just chaos` to refresh it, partition series included).
partition-chaos seeds="3":
    cargo run --release -p scmp-bench --bin chaos -- {{seeds}} --jobs 2 --partition-only

# Full STRESS boundary-point search: random warm-up, coordinate
# descent to the failure envelope, ddmin minimization; writes
# bench_results/stress.json and pins new reproducers under
# tests/scenarios/corpus/. Parallel runs re-check byte identity
# against a serial pass.
stress:
    cargo run --release -p scmp-bench --bin stress

# Reduced STRESS search for CI: fig5 profile only, no corpus writes,
# serial-vs-parallel byte-identity guard still armed via --jobs.
stress-smoke:
    cargo run --release -p scmp-bench --bin stress -- --smoke --no-pin --jobs 2

# Path-layer scaling study: on-demand provider + CSR topology at
# 1k–10k nodes (memory / events-per-sec / tree-build-latency curves,
# plus a fig8/fig9-shaped run at 5k); writes bench_results/scale.json.
# Parallel runs re-check the deterministic portion against a serial
# pass byte for byte.
scale:
    cargo run --release -p scmp-bench --bin scale

# Reduced scaling study for CI: curve capped at 1k nodes, no 5k fig
# cells, no scale.json write, serial-vs-parallel byte-identity guard
# armed via --jobs.
scale-smoke:
    cargo run --release -p scmp-bench --bin scale -- --smoke --jobs 2

# Query a JSONL telemetry trace, e.g.:
#   just inspect bench_results/failstorm_trace.jsonl --audit
inspect +args:
    cargo run -q -p scmp-bench --bin scmp-inspect -- {{args}}

# Perf-regression gate: replay the scenario corpus (serial vs parallel
# byte identity), re-run the hot-path benches, and compare against the
# committed bench_results/ baselines with per-metric tolerance bands;
# writes bench_results/regress.json. `just regress --smoke` for the CI
# variant (no JSON write).
regress *args:
    cargo run --release -p scmp-bench --bin regress -- {{args}}

# Reconstruct causal packet journeys from a committed golden trace:
#   just journey 1        every journey in group 1
#   just journey 1:3      the hop-by-hop journey of g1 payload #3
journey spec="1" trace="tests/golden/failstorm_events.jsonl":
    cargo run -q -p scmp-bench --bin scmp-inspect -- {{trace}} --journey {{spec}}

# End-to-end telemetry walkthrough: sinks, gauges, histograms, spans,
# inspector round trip.
telemetry-tour:
    cargo run --example telemetry_tour

# Refresh the committed golden traces (legacy text + structured JSONL)
# after an intentional protocol change; review the diff like code.
golden-update:
    UPDATE_GOLDEN=1 cargo test -p scmp-integration --test golden_trace
    UPDATE_GOLDEN=1 cargo test -p scmp-integration --test telemetry
    UPDATE_GOLDEN=1 cargo test -p scmp-integration --test lossy_control_plane
    UPDATE_GOLDEN=1 cargo test -p scmp-integration --test journey_golden
