//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! A straightforward recursive-descent JSON parser and printer over the
//! vendored `serde::Value`. Covers the workspace's surface: `from_str`,
//! `to_string`, `to_string_pretty`, and [`Value`] with `v["key"]`
//! indexing and `as_f64`.

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// Parse or print failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_json_value(&value).map_err(Error)
}

/// Serialize compactly.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

// --------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.eat_word("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_word("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.eat_word("null").map(|_| Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace's writers; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("bad number"))
        }
    }
}

// -------------------------------------------------------------- printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Ensure a float marker so it round-trips as F64.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for doc in [
            "0",
            "123",
            "-7",
            "1.5",
            "true",
            "false",
            "null",
            "\"hi\\n\"",
        ] {
            let v: Value = from_str(doc).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "doc {doc}");
        }
    }

    #[test]
    fn nested_document() {
        let doc = r#"{ "a": [1, 2, {"b": null}], "c": "x", "d": -3.25 }"#;
        let v: Value = from_str(doc).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["d"].as_f64(), Some(-3.25));
        assert_eq!(v["c"], "x");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn typed_from_str() {
        let pairs: Vec<(u32, String)> = from_str(r#"[[1, "a"], [2, "b"]]"#).unwrap();
        assert_eq!(pairs, vec![(1, "a".to_string()), (2, "b".to_string())]);
        assert!(from_str::<Vec<u32>>("[1, -2]").is_err());
        assert!(from_str::<u32>("{").is_err());
    }

    #[test]
    fn float_marker_preserved() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        let v: Value = from_str(&s).unwrap();
        assert_eq!(v, Value::F64(3.0));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }
}
