//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Upstream serde is a zero-copy visitor framework; this shim is a much
//! simpler tree-based design that covers what the workspace needs: every
//! [`Serialize`] type renders to a JSON [`Value`], every [`Deserialize`]
//! type parses from one. `serde_json` (also vendored) supplies the
//! text parser/printer over the same [`Value`].
//!
//! The `derive` feature re-exports the hand-written derive macros from
//! the vendored `serde_derive`, which support exactly the container
//! shapes and `#[serde(...)]` attributes used in this repository:
//! named structs (with `#[serde(default)]` fields), newtype structs,
//! unit-variant enums, internally tagged enums
//! (`#[serde(tag = "...", rename_all = "lowercase")]`), and
//! `#[serde(untagged)]` enums of newtype variants.

use std::collections::{BTreeMap, BTreeSet};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON document.
///
/// Integers keep their signedness (`U64` vs `I64`) so `u64` values above
/// `i64::MAX` survive a round trip; floats are only produced for numbers
/// written with a fraction or exponent.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key-ordered as inserted (preserves document order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short name of the JSON kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The fields when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any number kind).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Field lookup on objects (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]` — [`Value::Null`] for missing keys, like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

/// Field lookup helper used by the generated `Deserialize` impls.
#[doc(hidden)]
pub fn __field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Render as a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Types that can parse themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse from a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, String>;

    /// Called when a struct field is absent from the document. `Option`
    /// overrides this to succeed with `None`; everything else errors,
    /// which the derive turns into a "missing field" message.
    fn from_json_missing() -> Result<Self, String> {
        Err("missing".to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, String> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| format!("expected unsigned integer, got {}", v.kind_name()))?;
                <$t>::try_from(raw).map_err(|_| format!("{raw} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, String> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| format!("expected integer, got {}", v.kind_name()))?;
                <$t>::try_from(raw).map_err(|_| format!("{raw} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        v.as_f64()
            .ok_or_else(|| format!("expected number, got {}", v.kind_name()))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        f64::from_json_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {}", other.kind_name())),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {}", v.kind_name()))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }

    fn from_json_missing() -> Result<Self, String> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {}", v.kind_name()))?
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json_value(item).map_err(|e| format!("[{i}]: {e}")))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        let items = Vec::<T>::from_json_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of {N} elements, got {got}"))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        Vec::<T>::from_json_value(v).map(|items| items.into_iter().collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        v.as_object()
            .ok_or_else(|| format!("expected object, got {}", v.kind_name()))?
            .iter()
            .map(|(k, item)| {
                V::from_json_value(item)
                    .map(|parsed| (k.clone(), parsed))
                    .map_err(|e| format!(".{k}: {e}"))
            })
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, String> {
                let items = v
                    .as_array()
                    .ok_or_else(|| format!("expected array, got {}", v.kind_name()))?;
                if items.len() != $len {
                    return Err(format!("expected {}-tuple, got {} elements", $len, items.len()));
                }
                Ok(($($name::from_json_value(&items[$idx]).map_err(|e| format!("[{}]: {e}", $idx))?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_eq() {
        let v = Value::Object(vec![
            ("level".to_string(), Value::Str("tightest".to_string())),
            ("x".to_string(), Value::U64(3)),
        ]);
        assert!(v["level"] == "tightest");
        assert_eq!(v["x"].as_f64(), Some(3.0));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn container_roundtrips() {
        let original: (Vec<u32>, Option<i64>, [u64; 2]) = (vec![1, 2], Some(-5), [7, 8]);
        let v = original.to_json_value();
        let back = <(Vec<u32>, Option<i64>, [u64; 2])>::from_json_value(&v).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn missing_field_semantics() {
        assert!(u64::from_json_missing().is_err());
        assert_eq!(Option::<u64>::from_json_missing(), Ok(None));
    }

    #[test]
    fn range_checks() {
        assert!(u8::from_json_value(&Value::U64(300)).is_err());
        assert!(u64::from_json_value(&Value::I64(-1)).is_err());
        assert_eq!(i32::from_json_value(&Value::I64(-7)), Ok(-7));
    }
}
