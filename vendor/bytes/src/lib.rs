//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal API-compatible subset of every external dependency (see
//! `vendor/README.md`). This crate covers exactly what the SCMP wire
//! codecs use: `Bytes`, `BytesMut`, and the big-endian `Buf`/`BufMut`
//! accessors.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, sliceable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// A buffer copied from a static slice. (Upstream borrows without
    /// copying; this shim copies — semantics are identical.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// A copying equivalent of upstream's shallow clone of a slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the (remaining) view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the view into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-view of the buffer; `range` is relative to the current view.
    ///
    /// # Panics
    /// If the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            buf: Arc::clone(&self.buf),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            buf: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read cursor over a byte buffer (big-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    ///
    /// # Panics
    /// If fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write cursor appending big-endian integers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0a0b_0c0d_0e0f);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 15);
        assert_eq!(bytes.get_u8(), 1);
        assert_eq!(bytes.get_u16(), 0x0203);
        assert_eq!(bytes.get_u32(), 0x0405_0607);
        assert_eq!(bytes.get_u64(), 0x0809_0a0b_0c0d_0e0f);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(s.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 5, "parent unchanged");
    }
}
