//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Differences from upstream, chosen deliberately for this repository:
//!
//! * **Deterministic by construction.** Every test's case stream is
//!   seeded from the test's module path + name + case index, so a run
//!   is bit-for-bit reproducible with no `.proptest-regressions`
//!   files, environment variables, or OS entropy. (Committed
//!   regression files become inert; the fixed stream already replays
//!   identically every run.)
//! * **No shrinking.** A failing case reports its inputs; since the
//!   stream is fixed, rerunning reproduces it exactly.
//! * Only the strategy forms used here: integer/float ranges,
//!   `any::<T>()`, strategy tuples, and `prop::collection::vec`.
//!
//! `prop_assert*` macros early-return `Err(TestCaseError)` exactly like
//! upstream, so helper functions returning
//! `Result<(), TestCaseError>` and `?` propagation keep working.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A test-case failure (what `prop_assert!` produces).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion/check with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Upstream-compatible alias: a rejected case is treated as a
    /// failure here (this workspace never rejects).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod test_runner {
    //! Runner configuration and the per-case RNG.

    pub use super::TestCaseError;

    /// Subset of upstream's config: just the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case random source (SplitMix64 stream seeded
    /// from the test name and case index).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of test `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, then fold in the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut rng = TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            };
            rng.next_u64(); // decorrelate nearby seeds
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        ///
        /// # Panics
        /// If `n` is zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty draw range");
            self.next_u64() % n
        }
    }
}

pub use test_runner::{ProptestConfig, TestRng};

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;
    /// Draw one value.
    fn draw(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_strategy_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty strategy range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn draw(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draw from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy covering a type's whole domain; returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn draw(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident : $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn draw(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.draw(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Element-count specification for [`collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over `element` with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn draw(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.draw(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.
    use super::{Strategy, TestRng};

    /// Uniform `bool` strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Uniform over `{false, true}`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn draw(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Everything a proptest file conventionally imports.
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Check a condition; on failure, early-return a [`TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Check equality; on failure, early-return a [`TestCaseError`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Check inequality; on failure, early-return a [`TestCaseError`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(test_name, case);
                $(let $arg = $crate::Strategy::draw(&($strat), &mut __rng);)*
                let inputs = format!(
                    concat!("" $(, stringify!($arg), " = {:?}, ")*)
                    $(, $arg)*
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n    inputs: {}",
                        test_name, case, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn helper(x: u64) -> Result<(), TestCaseError> {
        prop_assert!(x < u64::MAX, "never fires");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3u32..9, b in 10u64..=20, n in 1usize..5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((10..=20).contains(&b));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(
            items in prop::collection::vec((0u32..6, any::<bool>()), 0..40),
            flag in any::<bool>(),
        ) {
            prop_assert!(items.len() < 40);
            for (v, _b) in &items {
                prop_assert!(*v < 6, "v = {}", v);
            }
            let _ = flag;
        }

        #[test]
        fn helper_question_mark(x in 0u64..100) {
            helper(x)?;
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn determinism_across_instances() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        inner();
    }
}
