//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Real serde_derive pulls in `syn`/`quote`; neither is available in
//! this network-less build environment, so the item is parsed directly
//! from the `proc_macro` token tree and the impl is emitted as a string.
//! Supported container shapes (everything this workspace derives):
//!
//! * named structs, with per-field `#[serde(default)]`
//! * newtype structs (`struct NodeId(pub u32)`)
//! * enums of unit variants (serialized as their name string)
//! * internally tagged enums of struct/unit variants:
//!   `#[serde(tag = "kind", rename_all = "lowercase")]`
//! * `#[serde(untagged)]` enums of newtype variants (tried in order)
//!
//! Anything else (generics, tuple structs with >1 field, adjacent/
//! external tagging of data-carrying variants) panics at expansion time
//! with a message naming this file, so a future extension is deliberate
//! rather than silently wrong.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- model

#[derive(Default, Debug)]
struct SerdeAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
    untagged: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantBody {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: VariantBody,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    attrs: SerdeAttrs,
    kind: Kind,
}

// --------------------------------------------------------------- parser

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive shim: expected {what}, got {other:?}"),
        }
    }

    /// Consume leading attributes, folding any `#[serde(...)]` content
    /// into the returned attrs.
    fn take_attrs(&mut self) -> SerdeAttrs {
        let mut attrs = SerdeAttrs::default();
        while self.is_punct('#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    parse_attr_group(g.stream(), &mut attrs);
                }
                other => panic!("serde_derive shim: malformed attribute, got {other:?}"),
            }
        }
        attrs
    }

    /// Skip `pub` / `pub(crate)` / `pub(super)` etc.
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skip tokens until a top-level comma (angle-bracket aware, so
    /// `BTreeMap<String, u64>` counts as one chunk) or end of stream.
    /// Consumes the comma. Returns false when the stream ended.
    fn skip_type_to_comma(&mut self) -> bool {
        let mut angle: i32 = 0;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn parse_attr_group(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let mut c = Cursor::new(stream);
    if !c.is_ident("serde") {
        return; // #[doc], #[derive], #[inline], ... — not ours
    }
    c.next();
    let inner = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("serde_derive shim: expected #[serde(...)], got {other:?}"),
    };
    let mut c = Cursor::new(inner);
    while let Some(t) = c.next() {
        let key = match t {
            TokenTree::Ident(i) => i.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => panic!("serde_derive shim: unexpected token in #[serde(...)]: {other:?}"),
        };
        let value = if c.is_punct('=') {
            c.next();
            match c.next() {
                Some(TokenTree::Literal(l)) => Some(strip_quotes(&l.to_string())),
                other => panic!("serde_derive shim: expected string after {key} =, got {other:?}"),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            ("untagged", None) => attrs.untagged = true,
            ("default", None) => attrs.default = true,
            (other, v) => panic!(
                "serde_derive shim: unsupported serde attribute {other}{}",
                if v.is_some() { " = \"...\"" } else { "" }
            ),
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    let attrs = c.take_attrs();
    c.skip_visibility();
    let keyword = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    if c.is_punct('<') {
        panic!("serde_derive shim: generic type {name} not supported");
    }
    let kind = match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    panic!("serde_derive shim: tuple struct {name} has {n} fields; only newtypes supported");
                }
                Kind::NewtypeStruct
            }
            other => panic!("serde_derive shim: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    Item { name, attrs, kind }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let attrs = c.take_attrs();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field {name}, got {other:?}"),
        }
        fields.push(Field {
            name,
            default: attrs.default,
        });
        if !c.skip_type_to_comma() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    // Leading attrs/visibility belong to the first field.
    let _ = c.take_attrs();
    c.skip_visibility();
    if c.peek().is_none() {
        return 0;
    }
    let mut n = 1;
    while c.skip_type_to_comma() {
        let _ = c.take_attrs();
        c.skip_visibility();
        if c.peek().is_none() {
            break; // trailing comma
        }
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        let _ = c.take_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident("variant name");
        let body = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantBody::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    panic!("serde_derive shim: variant {name} has {n} tuple fields; only newtype variants supported");
                }
                c.next();
                VariantBody::Newtype
            }
            _ => VariantBody::Unit,
        };
        variants.push(Variant { name, body });
        if c.is_punct(',') {
            c.next();
        } else {
            break;
        }
    }
    variants
}

// -------------------------------------------------------------- helpers

fn rename(variant: &str, rule: Option<&str>) -> String {
    match rule {
        None => variant.to_string(),
        Some("lowercase") => variant.to_lowercase(),
        Some("UPPERCASE") => variant.to_uppercase(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, ch) in variant.chars().enumerate() {
                if ch.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(ch.to_lowercase());
                } else {
                    out.push(ch);
                }
            }
            out
        }
        Some(other) => panic!("serde_derive shim: unsupported rename_all = \"{other}\""),
    }
}

fn wrap(name: &str, trait_name: &str, body: &str) -> String {
    format!(
        "const _: () = {{\n\
             #[automatically_derived]\n\
             impl ::serde::{trait_name} for {name} {{\n\
                 {body}\n\
             }}\n\
         }};"
    )
}

// ------------------------------------------------------------ Serialize

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let fname = &f.name;
                pushes.push_str(&format!(
                    "fields.push((\"{fname}\".to_string(), ::serde::Serialize::to_json_value(&self.{fname})));\n"
                ));
            }
            format!(
                "fn to_json_value(&self) -> ::serde::Value {{\n\
                     let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Object(fields)\n\
                 }}"
            )
        }
        Kind::NewtypeStruct => "fn to_json_value(&self) -> ::serde::Value {\n\
                 ::serde::Serialize::to_json_value(&self.0)\n\
             }"
        .to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.body {
                    VariantBody::Unit if item.attrs.tag.is_none() && !item.attrs.untagged => {
                        let ren = rename(vname, item.attrs.rename_all.as_deref());
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{ren}\".to_string()),\n"
                        ));
                    }
                    VariantBody::Unit => {
                        let tag = item.attrs.tag.as_deref().unwrap_or_else(|| {
                            panic!("serde_derive shim: untagged unit variant {name}::{vname} unsupported")
                        });
                        let ren = rename(vname, item.attrs.rename_all.as_deref());
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Object(vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{ren}\".to_string()))]),\n"
                        ));
                    }
                    VariantBody::Newtype => {
                        if !item.attrs.untagged {
                            panic!("serde_derive shim: newtype variant {name}::{vname} requires #[serde(untagged)]");
                        }
                        arms.push_str(&format!(
                            "{name}::{vname}(inner) => ::serde::Serialize::to_json_value(inner),\n"
                        ));
                    }
                    VariantBody::Struct(fields) => {
                        let tag = item.attrs.tag.as_deref().unwrap_or_else(|| {
                            panic!("serde_derive shim: struct variant {name}::{vname} requires #[serde(tag = ...)]")
                        });
                        let ren = rename(vname, item.attrs.rename_all.as_deref());
                        let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            let fname = &f.name;
                            pushes.push_str(&format!(
                                "fields.push((\"{fname}\".to_string(), ::serde::Serialize::to_json_value({fname})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => {{\n\
                                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{ren}\".to_string()))];\n\
                                 {pushes}\
                                 ::serde::Value::Object(fields)\n\
                             }}\n",
                            pat = pat.join(", ")
                        ));
                    }
                }
            }
            format!(
                "fn to_json_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}\n}}\n\
                 }}"
            )
        }
    };
    wrap(name, "Serialize", &body)
}

// ---------------------------------------------------------- Deserialize

/// Field extraction expression shared by struct and tagged-variant codegen.
fn field_expr(container: &str, f: &Field) -> String {
    let fname = &f.name;
    if f.default {
        format!(
            "{fname}: match ::serde::__field(obj, \"{fname}\") {{\n\
                 ::std::option::Option::Some(fv) => ::serde::Deserialize::from_json_value(fv)\n\
                     .map_err(|e| format!(\"{container}.{fname}: {{}}\", e))?,\n\
                 ::std::option::Option::None => ::std::default::Default::default(),\n\
             }},\n"
        )
    } else {
        format!(
            "{fname}: match ::serde::__field(obj, \"{fname}\") {{\n\
                 ::std::option::Option::Some(fv) => ::serde::Deserialize::from_json_value(fv)\n\
                     .map_err(|e| format!(\"{container}.{fname}: {{}}\", e))?,\n\
                 ::std::option::Option::None => ::serde::Deserialize::from_json_missing()\n\
                     .map_err(|_| \"{container}: missing field `{fname}`\".to_string())?,\n\
             }},\n"
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let extracts: String = fields.iter().map(|f| field_expr(name, f)).collect();
            format!(
                "fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                     let obj = v.as_object().ok_or_else(|| format!(\"{name}: expected object, got {{}}\", v.kind_name()))?;\n\
                     ::std::result::Result::Ok({name} {{\n{extracts}}})\n\
                 }}"
            )
        }
        Kind::NewtypeStruct => format!(
            "fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 ::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(v)?))\n\
             }}"
        ),
        Kind::Enum(variants) if item.attrs.untagged => {
            let mut tries = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.body {
                    VariantBody::Newtype => tries.push_str(&format!(
                        "if let ::std::result::Result::Ok(inner) = ::serde::Deserialize::from_json_value(v) {{\n\
                             return ::std::result::Result::Ok({name}::{vname}(inner));\n\
                         }}\n"
                    )),
                    _ => panic!(
                        "serde_derive shim: untagged enum {name} supports only newtype variants"
                    ),
                }
            }
            format!(
                "fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                     {tries}\
                     ::std::result::Result::Err(format!(\"{name}: no variant matched {{}}\", v.kind_name()))\n\
                 }}"
            )
        }
        Kind::Enum(variants) if item.attrs.tag.is_some() => {
            let tag = item.attrs.tag.as_deref().expect("checked");
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let ren = rename(vname, item.attrs.rename_all.as_deref());
                match &v.body {
                    VariantBody::Unit => arms.push_str(&format!(
                        "\"{ren}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantBody::Struct(fields) => {
                        let container = format!("{name}::{vname}");
                        let extracts: String =
                            fields.iter().map(|f| field_expr(&container, f)).collect();
                        arms.push_str(&format!(
                            "\"{ren}\" => ::std::result::Result::Ok({name}::{vname} {{\n{extracts}}}),\n"
                        ));
                    }
                    VariantBody::Newtype => panic!(
                        "serde_derive shim: tagged newtype variant {name}::{vname} unsupported"
                    ),
                }
            }
            format!(
                "fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                     let obj = v.as_object().ok_or_else(|| format!(\"{name}: expected object, got {{}}\", v.kind_name()))?;\n\
                     let tag = ::serde::__field(obj, \"{tag}\")\n\
                         .and_then(|t| t.as_str())\n\
                         .ok_or_else(|| \"{name}: missing or non-string tag `{tag}`\".to_string())?;\n\
                     match tag {{\n\
                         {arms}\
                         other => ::std::result::Result::Err(format!(\"{name}: unknown tag {{other:?}}\")),\n\
                     }}\n\
                 }}"
            )
        }
        Kind::Enum(variants) => {
            // Externally tagged; only unit variants (serialized as strings).
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        let ren = rename(vname, item.attrs.rename_all.as_deref());
                        arms.push_str(&format!(
                            "\"{ren}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    _ => panic!(
                        "serde_derive shim: externally tagged data-carrying variant {name}::{vname} unsupported (use #[serde(tag)] or #[serde(untagged)])"
                    ),
                }
            }
            format!(
                "fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                     let s = v.as_str().ok_or_else(|| format!(\"{name}: expected string, got {{}}\", v.kind_name()))?;\n\
                     match s {{\n\
                         {arms}\
                         other => ::std::result::Result::Err(format!(\"{name}: unknown variant {{other:?}}\")),\n\
                     }}\n\
                 }}"
            )
        }
    };
    wrap(name, "Deserialize", &body)
}
