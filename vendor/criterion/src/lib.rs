//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Provides the API surface the `crates/bench/benches/*` targets use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_with_input, bench_function, finish}`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros —
//! with a deliberately tiny runtime: each benchmark body runs a handful
//! of iterations and reports a rough per-iteration time. That keeps
//! `cargo test` (which executes `harness = false` bench targets) fast
//! while still smoke-testing every benchmark body end to end.

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim always runs a fixed
    /// small number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.name, &id.into_benchmark_id().0);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark body to drive the measured closure.
#[derive(Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Time `routine`. This shim runs it a fixed 3 iterations — enough
    /// to exercise the code and produce a rough number without making
    /// `cargo test` crawl.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        const ITERS: u32 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = Some(start.elapsed().as_nanos() as f64 / ITERS as f64);
    }

    fn report(&self, group: &str, id: &str) {
        match self.nanos_per_iter {
            Some(ns) => println!("bench {group}/{id}: ~{ns:.0} ns/iter (shim, 3 iters)"),
            None => println!("bench {group}/{id}: no measurement"),
        }
    }
}

/// Opaque benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Identifier from just a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Prevent the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("direct", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_bodies() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
