//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace uses with fixed, documented
//! algorithms so every seeded stream is reproducible forever:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64.
//! * [`RngCore`] / [`Rng`] — `gen`, `gen_range` (half-open and
//!   inclusive integer ranges), `gen_bool`.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The streams differ from upstream `rand`; nothing in the workspace
//! depends on upstream's exact values, only on determinism.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;
    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Construct from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, deterministic. Stands in for rand's
    /// `SmallRng` (which is also xoshiro-family on 64-bit targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro must not start at all-zero
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }
}

pub mod seq {
    //! Sequence utilities.
    use super::{RngCore, SampleRange};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_from(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(SampleRange::sample_from(0..self.len(), rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..=100u64);
            assert!((10..=100).contains(&v));
            let w: usize = rng.gen_range(0..7);
            assert!(w < 7);
            let f = rng.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = SmallRng::seed_from_u64(4);
        let dynr: &mut dyn super::RngCore = &mut rng;
        let v = dynr.gen_range(0..10u64);
        assert!(v < 10);
    }
}
