#!/usr/bin/env sh
# Tier-1 gate, runnable with no network access: everything this repo
# needs is vendored under vendor/, so the build must succeed with cargo
# forced offline. CI and the PR driver both call this.
set -eu
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true
cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo build --release
cargo test -q
# Re-run the determinism guards with the sweep executor forced onto a
# multi-worker pool: parallel fan-out must reproduce serial output byte
# for byte even on single-core CI hosts. The chaos sweep covers the
# seeded channel model — both tiers, best-effort and NACK recovery:
# impaired runs must also replay identically.
SCMP_JOBS=2 cargo test -q -p scmp-integration --test determinism
SCMP_JOBS=2 cargo test -q --release -p scmp-bench --lib chaos::
# Reliable-tier smoke sweep: lossy runs with NACK recovery on must be
# byte-identical across worker counts (suppression jitter is a seeded
# hash, never an RNG) and the jitter hash itself must stay pure.
SCMP_JOBS=2 cargo test -q -p scmp-integration --test proptest_reliability
# STRESS explorer smoke: a reduced seeded boundary search; --jobs 2
# arms the bin's built-in serial-vs-parallel byte-identity guard, and
# --no-pin keeps CI from mutating the pinned corpus. The corpus itself
# replays under `cargo test` (corpus_replay.rs) above.
SCMP_JOBS=2 cargo run -q --release -p scmp-bench --bin stress -- --smoke --no-pin
# Scaling-study smoke: the on-demand path provider driven on sub-1k
# transit-stub and Waxman graphs; --jobs 2 arms the bin's built-in
# guard that the deterministic report is byte-identical to a serial
# re-run (timing rows exempt).
SCMP_JOBS=2 cargo run -q --release -p scmp-bench --bin scale -- --smoke --jobs 2
# Partition-and-heal smoke: a reduced correlated-cut series plus the
# flash-crowd membership scenario under a 2-worker pool. The chaos bin
# byte-compares the parallel series against a serial re-run; the
# scenario runner is then driven twice over the same file and its
# reports compared byte for byte — the cut geometry, degraded mode,
# and epoch reconciliation are all seeded, so any divergence is a
# determinism bug.
SCMP_JOBS=2 cargo run -q --release -p scmp-bench --bin chaos -- 1 --jobs 2 --partition-only
part_a=$(cargo run -q --release -p scmp-bench --bin scenario -- \
    tests/scenarios/partition-smoke.json tests/scenarios/partition-smoke.json --jobs 2)
part_b=$(cargo run -q --release -p scmp-bench --bin scenario -- \
    tests/scenarios/partition-smoke.json tests/scenarios/partition-smoke.json --jobs 1)
[ "$part_a" = "$part_b" ] || {
    echo "partition smoke diverged between --jobs 2 and serial" >&2
    exit 1
}
# Fast loss-invariant scenario: 5% and 15% control-plane loss on the
# fig-scale topology — eventual grafting, no duplicate delivery, no
# spurious takeover.
cargo test -q -p scmp-integration --test lossy_control_plane
# Delivery audit over the committed golden trace: scmp-inspect exits
# non-zero on any duplicate delivery or unaccounted drop.
cargo run -q --release -p scmp-bench --bin scmp-inspect -- \
    tests/golden/failstorm_events.jsonl --audit
# Perf-regression gate in smoke mode: replays the pinned scenario
# corpus serially and on 2 workers (byte-identity guard), then re-runs
# the hot-path benches against the committed baselines. The second,
# inverted invocation proves the gate has teeth: an injected 2x
# throughput regression MUST make it exit non-zero.
cargo run -q --release -p scmp-bench --bin regress -- --smoke --jobs 2
if cargo run -q --release -p scmp-bench --bin regress -- \
    --smoke --jobs 2 --inject 2 >/dev/null 2>&1; then
    echo "regress gate failed to detect an injected 2x regression" >&2
    exit 1
fi
